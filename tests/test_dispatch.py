"""Tests for the fault-tolerant work-stealing dispatcher (repro.eval.dispatch).

Covers the protocol core (leases, heartbeats, stale rejection, retry
accounting) against the server object directly, the HTTP layer + client
backoff against a live localhost server, and the registered ``dispatch``
executor end-to-end -- including chaos runs (worker SIGKILL, frozen
heartbeats) asserted bit-equal to an uninterrupted serial run.
"""

import threading
import time

import pytest

from repro.eval import (
    CellSpec,
    RunJournal,
    adhoc_plan,
    chaos,
    execute,
    executor_names,
    get_executor,
)
from repro.eval.dispatch import (
    DispatchClient,
    DispatchError,
    DispatchServer,
    DispatchUnreachable,
    run_worker,
    spec_from_wire,
    spec_to_wire,
)
from repro.eval.executors import retry_spec
from repro.eval.metrics import CompilationResult


def _specs(n=2):
    return [CellSpec.make("sabre", "grid", 2, seed=s) for s in range(n)]


def _result(status="ok"):
    return CompilationResult(
        "sabre", "grid 2", 4, status=status, depth=5, swap_count=1
    )


def _metrics(results):
    return [
        (r.approach, r.architecture, r.status, r.depth, r.swap_count, r.verified)
        for r in results
    ]


@pytest.fixture
def chaos_env(monkeypatch):
    """Set REPRO_CHAOS for this test (parent process included) and clean up."""

    def _set(spec):
        monkeypatch.setenv(chaos.ENV_VAR, spec)
        chaos.reload()

    yield _set
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    chaos.reload()


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


class TestWireFormat:
    def test_roundtrip_is_identity(self):
        spec = CellSpec.make(
            "satmap",
            "sycamore",
            4,
            seed=3,
            timeout_s=1.5,
            rename="satmap*",
            workload="qaoa",
            verify="sample",
        )
        assert spec_from_wire(spec_to_wire(spec)) == spec

    def test_roundtrip_survives_json(self):
        import json

        spec = _specs(1)[0]
        wire = json.loads(json.dumps(spec_to_wire(spec)))
        assert spec_from_wire(wire) == spec


# ---------------------------------------------------------------------------
# Protocol core (no HTTP)
# ---------------------------------------------------------------------------


class TestLeaseProtocol:
    def test_lease_submit_roundtrip(self):
        server = DispatchServer(_specs(2), lease_s=5.0)
        for _ in range(2):
            reply = server.lease("a")
            accepted = server.submit("a", reply["lease"]["id"], _result().to_dict())
            assert accepted["accepted"]
        assert server.done()
        assert server.lease("a")["empty"] and server.lease("a")["done"]
        assert len(server.results_in_order()) == 2

    def test_results_in_order_refuses_incomplete_run(self):
        server = DispatchServer(_specs(2), lease_s=5.0)
        with pytest.raises(RuntimeError, match="never finished"):
            server.results_in_order()

    def test_expired_lease_is_stolen_and_revenant_rejected(self):
        server = DispatchServer(_specs(1), lease_s=0.05)
        dead = server.lease("slow")["lease"]
        time.sleep(0.1)
        assert server.reap() == 1
        stolen = server.lease("fast")["lease"]
        assert stolen["index"] == dead["index"]
        # The presumed-dead worker resurfaces with its old lease: rejected.
        late = server.submit("slow", dead["id"], _result().to_dict())
        assert not late["accepted"] and late["reason"] == "stale-lease"
        assert server.submit("fast", stolen["id"], _result().to_dict())["accepted"]
        assert server.reassigned == 1 and server.stale_results == 1
        assert server.dead_worker_count == 1
        assert server.done() and len(server.results_in_order()) == 1

    def test_heartbeats_keep_a_slow_lease_alive(self):
        server = DispatchServer(_specs(1), lease_s=0.25)
        lease = server.lease("a")["lease"]
        for _ in range(5):  # 0.4 s total: outlives lease_s only via beats
            time.sleep(0.08)
            assert server.heartbeat("a", lease["id"])["ok"]
        assert server.reap() == 0
        assert server.submit("a", lease["id"], _result().to_dict())["accepted"]

    def test_heartbeat_for_stale_lease_says_so(self):
        server = DispatchServer(_specs(1), lease_s=0.05)
        lease = server.lease("a")["lease"]
        time.sleep(0.1)
        server.reap()
        assert not server.heartbeat("a", lease["id"])["ok"]

    def test_another_workers_lease_cannot_be_used(self):
        server = DispatchServer(_specs(1), lease_s=5.0)
        lease = server.lease("a")["lease"]
        assert not server.heartbeat("b", lease["id"])["ok"]
        assert not server.submit("b", lease["id"], _result().to_dict())["accepted"]

    def test_malformed_result_rejected(self):
        server = DispatchServer(_specs(1), lease_s=5.0)
        lease = server.lease("a")["lease"]
        assert not server.submit("a", lease["id"], "not a dict")["accepted"]
        assert not server.submit("a", lease["id"], {"nope": 1})["accepted"]
        # the lease survived both garbage submissions
        assert server.heartbeat("a", lease["id"])["ok"]

    def test_timeout_cells_get_their_retry_budget(self):
        server = DispatchServer(_specs(1), lease_s=5.0, retry_timeouts=1)
        first = server.lease("a")["lease"]
        assert first["attempt"] == 0
        server.submit("a", first["id"], _result("timeout").to_dict())
        assert not server.done()  # the retry pass queued it again
        retry = server.lease("a")["lease"]
        assert retry["attempt"] == 1 and retry["index"] == first["index"]
        server.submit("a", retry["id"], _result("timeout").to_dict())
        assert server.done()  # budget exhausted: the timeout is final
        final = server.results_in_order()[0]
        assert final.status == "timeout" and final.extra["retries"] == 1
        assert server.retried == 1 and server.recovered == 0

    def test_recovered_retry_accounted(self):
        server = DispatchServer(_specs(1), lease_s=5.0, retry_timeouts=1)
        first = server.lease("a")["lease"]
        server.submit("a", first["id"], _result("timeout").to_dict())
        retry = server.lease("a")["lease"]
        server.submit("a", retry["id"], _result("ok").to_dict())
        assert server.done()
        assert server.retried == 1 and server.recovered == 1
        assert server.results_in_order()[0].status == "ok"

    def test_retry_lease_carries_scaled_timeout(self):
        spec = CellSpec.make("satmap", "sycamore", 4, timeout_s=0.5)
        server = DispatchServer(
            [spec], lease_s=5.0, retry_timeouts=1, retry_timeout_multiplier=4.0
        )
        first = server.lease("a")["lease"]
        assert first["spec"]["timeout_s"] == 0.5
        server.submit("a", first["id"], _result("timeout").to_dict())
        retry = server.lease("a")["lease"]
        assert retry["spec"]["timeout_s"] == 2.0

    def test_status_snapshot(self):
        server = DispatchServer(_specs(2), lease_s=5.0)
        server.lease("a")
        snapshot = server.status()
        assert snapshot["cells"] == 2 and snapshot["active"] == 1
        assert snapshot["pending"] == 1 and snapshot["workers"] == ["a"]
        assert not snapshot["done"]


class TestRetrySpec:
    def test_default_multiplier_returns_spec_unchanged(self):
        spec = CellSpec.make("satmap", "sycamore", 4, timeout_s=0.5)
        assert retry_spec(spec, 1, 1.0) is spec

    def test_budget_scales_per_attempt(self):
        spec = CellSpec.make("satmap", "sycamore", 4, timeout_s=0.5)
        assert retry_spec(spec, 1, 2.0).timeout_s == 1.0
        assert retry_spec(spec, 2, 2.0).timeout_s == 2.0

    def test_untimed_cells_and_first_attempts_unscaled(self):
        untimed = CellSpec.make("sabre", "grid", 2)
        assert retry_spec(untimed, 1, 2.0) is untimed
        timed = CellSpec.make("satmap", "sycamore", 4, timeout_s=0.5)
        assert retry_spec(timed, 0, 2.0) is timed


# ---------------------------------------------------------------------------
# HTTP layer + client backoff
# ---------------------------------------------------------------------------


class TestHttpLayer:
    def test_worker_drains_a_live_server(self):
        with DispatchServer(_specs(2), lease_s=5.0) as server:
            stats = run_worker(server.url, worker_id="t0")
            assert stats == {"cells": 2, "stale": 0, "leased": 2}
            assert server.done()
            assert _metrics(server.results_in_order()) == _metrics(
                [r for r in execute(adhoc_plan("m", _specs(2))).results]
            )

    def test_unknown_endpoint_is_a_protocol_error_not_retried(self):
        with DispatchServer(_specs(1), lease_s=5.0) as server:
            client = DispatchClient(server.url, "w0", backoff_base_s=0.01)
            with pytest.raises(DispatchError, match="HTTP 404"):
                client.post("/bogus", {"worker": "w0"})
            assert client.retries == 0

    def test_unreachable_dispatcher_exhausts_backoff(self):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        client = DispatchClient(
            f"http://127.0.0.1:{dead_port}", "w0",
            max_tries=2, backoff_base_s=0.01, timeout_s=0.5,
        )
        with pytest.raises(DispatchUnreachable, match="after 2 tries"):
            client.post("/join", {"worker": "w0"})

    def test_dropped_response_is_retried_transparently(self, chaos_env):
        chaos_env("drop-response@path=/join,times=1")
        with DispatchServer(_specs(1), lease_s=5.0) as server:
            client = DispatchClient(server.url, "w0", backoff_base_s=0.01)
            assert client.post("/join", {"worker": "w0"})["ok"]
            assert client.retries >= 1

    def test_delayed_response_arrives_late_but_intact(self, chaos_env):
        chaos_env("delay-response@path=/join,s=0.2,times=1")
        with DispatchServer(_specs(1), lease_s=5.0) as server:
            client = DispatchClient(server.url, "w0")
            start = time.monotonic()
            assert client.post("/join", {"worker": "w0"})["ok"]
            assert time.monotonic() - start >= 0.2


class TestBackoff:
    def test_deterministic_per_worker(self):
        a = DispatchClient("http://localhost:1", "w0")
        b = DispatchClient("http://localhost:1", "w0")
        assert [a.backoff_s(i) for i in range(1, 6)] == [
            b.backoff_s(i) for i in range(1, 6)
        ]

    def test_different_workers_get_different_jitter(self):
        a = DispatchClient("http://localhost:1", "w0")
        b = DispatchClient("http://localhost:1", "w1")
        assert [a.backoff_s(i) for i in range(1, 6)] != [
            b.backoff_s(i) for i in range(1, 6)
        ]

    def test_exponential_then_capped(self):
        client = DispatchClient(
            "http://localhost:1", "w0", backoff_base_s=0.1, backoff_cap_s=1.0
        )
        for attempt, raw in ((1, 0.1), (2, 0.2), (3, 0.4), (20, 1.0)):
            delay = client.backoff_s(attempt)
            assert raw * 0.5 <= delay <= raw  # jitter scales into [0.5, 1.0]


# ---------------------------------------------------------------------------
# The registered executor, end to end
# ---------------------------------------------------------------------------


class TestDispatchExecutor:
    def test_registered_with_synonyms(self):
        assert "dispatch" in executor_names()
        assert get_executor("dispatch").name == "dispatch"
        assert get_executor("dispatcher").name == "dispatch"
        assert get_executor("work-stealing").name == "dispatch"

    def test_bit_equal_to_serial_and_journaled(self, tmp_path):
        p = adhoc_plan("mini", _specs(6))
        serial = execute(p, executor="serial")
        report = execute(
            p, executor="dispatch", jobs=2, journal=str(tmp_path / "j")
        )
        assert report.executor == "dispatch"
        assert _metrics(report.results) == _metrics(serial.results)
        assert report.status_counts == serial.status_counts
        journal = RunJournal.open(tmp_path / "j")
        assert len(journal) == len(p.cells)  # single writer saw every cell
        journal.close()

    def test_chaos_kill_and_freeze_bit_equal_to_serial(self, chaos_env, tmp_path):
        # One worker SIGKILLed mid-run, the other frozen (heartbeats stop)
        # while stalled past its lease: both cells must be stolen back and
        # the final table must be indistinguishable from a serial run.
        chaos_env(
            "kill-worker@worker=w0,cell=1;"
            "freeze-heartbeat@worker=w1,cell=2;"
            "stall@worker=w1,cell=2,s=1.2"
        )
        p = adhoc_plan("chaotic", _specs(8))
        report = execute(
            p,
            executor="dispatch",
            jobs=2,
            journal=str(tmp_path / "j"),
            dispatch={"lease_s": 0.4, "heartbeat_s": 0.1},
        )
        chaos_env("")  # serial reference runs clean
        serial = execute(p, executor="serial")
        assert _metrics(report.results) == _metrics(serial.results)
        assert report.reassigned >= 2  # the killed cell and the frozen cell
        assert report.dead_workers >= 1
        # no duplicates: the journal's last-entry-wins view is the cell set
        journal = RunJournal.open(tmp_path / "j")
        assert len(journal) == len(p.cells)
        journal.close()

    def test_timeout_keeps_retry_budget_accounting(self):
        p = adhoc_plan(
            "slow", [CellSpec.make("satmap", "sycamore", 4, timeout_s=0.2)]
        )
        report = execute(
            p, executor="dispatch", jobs=1, retry_timeout_multiplier=1.0
        )
        assert report.status_counts == {"timeout": 1}
        assert report.retried == 1 and report.recovered == 0
        assert report.results[0].extra.get("retries") == 1
        assert report.retry_timeout_multiplier == 1.0

    def test_resume_serves_journaled_prefix(self, tmp_path):
        p = adhoc_plan("mini", _specs(4))
        clean = execute(p, executor="dispatch", jobs=2, journal=str(tmp_path / "c"))
        lines = (tmp_path / "c" / "journal.jsonl").read_text().splitlines(True)
        crash = tmp_path / "crash"
        crash.mkdir()
        (crash / "journal.jsonl").write_text("".join(lines[:3]) + '{"torn')
        resumed = execute(p, executor="dispatch", jobs=2, resume=str(crash))
        assert resumed.resumed == 2
        assert _metrics(resumed.results) == _metrics(clean.results)

    def test_resume_refuses_other_code_version(self, tmp_path):
        import json

        p = adhoc_plan("mini", _specs(2))
        execute(p, executor="dispatch", jobs=1, journal=str(tmp_path / "j"))
        path = tmp_path / "j" / "journal.jsonl"
        lines = path.read_text().splitlines(True)
        meta = json.loads(lines[0])
        meta["code"] = "deadbeefcafe"
        path.write_text(json.dumps(meta) + "\n" + "".join(lines[1:]))
        with pytest.raises(ValueError, match="code version"):
            execute(p, executor="dispatch", jobs=1, resume=str(tmp_path / "j"))

    def test_serve_only_with_external_worker(self):
        # spawn_workers=0: the executor serves and waits; an "external"
        # worker (here: a thread in this process) joins by URL and drains
        # the queue -- the dynamic-join path the --serve/--join CLI uses.
        p = adhoc_plan("mini", _specs(3))
        url_ready = threading.Event()
        url_box = {}

        def on_start(url):
            url_box["url"] = url
            url_ready.set()

        def external_worker():
            assert url_ready.wait(timeout=10.0)
            run_worker(url_box["url"], worker_id="ext0")

        joiner = threading.Thread(target=external_worker, daemon=True)
        joiner.start()
        report = execute(
            p,
            executor="dispatch",
            jobs=1,
            dispatch={"spawn_workers": 0, "on_start": on_start},
        )
        joiner.join(timeout=10.0)
        assert report.status_counts.get("ok") == 3
        assert _metrics(report.results) == _metrics(
            execute(p, executor="serial").results
        )

    def test_cache_hits_short_circuit_the_queue(self, tmp_path):
        from repro.eval.cache import ResultCache

        cache = ResultCache(str(tmp_path / "cache"))
        p = adhoc_plan("mini", _specs(3))
        execute(p, executor="dispatch", jobs=1, cache=cache)
        warm = execute(
            p, executor="dispatch", jobs=1, cache=cache,
            journal=str(tmp_path / "j"),
        )
        assert warm.cache_stats["hits"] == 3
        # hits are journaled dispatcher-side so a resume still sees them
        journal = RunJournal.open(tmp_path / "j")
        assert len(journal) == 3
        journal.close()


class TestDispatchCli:
    def test_serve_and_join_conflict(self):
        from repro.eval.experiments import main

        with pytest.raises(SystemExit):
            main(["--serve", "8765", "--join", "http://localhost:8765"])

    def test_jobs_zero_requires_serve(self):
        from repro.eval.experiments import main

        with pytest.raises(SystemExit):
            main(["-e", "fig27", "--jobs", "0"])

    def test_bad_serve_address_rejected(self):
        from repro.eval.experiments import main

        with pytest.raises(SystemExit):
            main(["-e", "fig27", "--serve", "not-a-port"])

    def test_serve_with_executor_conflict(self):
        from repro.eval.experiments import main

        with pytest.raises(SystemExit):
            main(["-e", "fig27", "--serve", "0", "--executor", "serial"])

    def test_serve_runs_the_plan(self, capsys):
        from repro.eval.experiments import main

        code = main(["-e", "fig27", "--serve", "127.0.0.1:0", "--jobs", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dispatcher serving at http://127.0.0.1:" in out
        assert "[dispatch]" in out and "ok=10" in out
