"""Tests for the QFT builders and the k-partition rewrite (Section 3.2)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    GateKind,
    PartitionRange,
    qft_circuit,
    qft_ia_gates,
    qft_ie_gates,
    qft_interaction_count,
    qft_pair_list,
    qft_partitioned,
)
from repro.verify import circuit_unitary, qft_reference_unitary, unitaries_equal_up_to_phase


class TestQftCircuit:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 16])
    def test_gate_counts(self, n):
        c = qft_circuit(n)
        assert c.count(GateKind.H) == n
        assert c.count(GateKind.CPHASE) == n * (n - 1) // 2

    def test_rejects_zero_qubits(self):
        with pytest.raises(ValueError):
            qft_circuit(0)

    def test_textbook_order_groups_by_smaller_qubit(self):
        c = qft_circuit(4)
        # first gate block: H(0), CP(0,1), CP(0,2), CP(0,3)
        assert c[0].qubits == (0,)
        assert [g.qubits for g in c.gates[1:4]] == [(0, 1), (0, 2), (0, 3)]

    def test_angles_follow_distance(self):
        c = qft_circuit(5)
        for g in c.gates:
            if g.kind == GateKind.CPHASE:
                i, j = g.qubits
                assert g.angle == pytest.approx(math.pi / 2 ** abs(j - i))

    def test_final_swaps_optional(self):
        with_swaps = qft_circuit(4, include_final_swaps=True)
        without = qft_circuit(4)
        assert with_swaps.count(GateKind.SWAP) == 2
        assert without.count(GateKind.SWAP) == 0

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_matches_reference_dft_matrix(self, n):
        u = circuit_unitary(qft_circuit(n))
        ref = qft_reference_unitary(n)
        assert unitaries_equal_up_to_phase(u, ref)

    def test_pair_list_matches_circuit(self):
        hs, pairs = qft_pair_list(6)
        c = qft_circuit(6)
        assert hs == list(range(6))
        assert set(pairs) == c.interaction_pairs()

    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 1), (4, 6), (10, 45)])
    def test_interaction_count(self, n, expected):
        assert qft_interaction_count(n) == expected


class TestPartitionRange:
    def test_simple_range(self):
        p = PartitionRange(0, 5)
        assert p.size == 5
        assert list(p.qubits()) == [0, 1, 2, 3, 4]

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            PartitionRange(3, 3)

    def test_children_must_be_consecutive(self):
        with pytest.raises(ValueError):
            PartitionRange(0, 6, [PartitionRange(0, 2), PartitionRange(3, 6)])

    def test_children_must_cover_parent(self):
        with pytest.raises(ValueError):
            PartitionRange(0, 6, [PartitionRange(0, 2), PartitionRange(2, 5)])

    def test_children_must_start_at_parent_start(self):
        with pytest.raises(ValueError):
            PartitionRange(0, 6, [PartitionRange(1, 6)])

    def test_even_split(self):
        p = PartitionRange.even_split(10, 3)
        assert [c.size for c in p.children] == [3, 4, 3]
        assert p.children[0].start == 0 and p.children[-1].stop == 10

    def test_even_split_single_group(self):
        p = PartitionRange.even_split(7, 1)
        assert p.children == [] and p.size == 7

    def test_even_split_rejects_too_many_groups(self):
        with pytest.raises(ValueError):
            PartitionRange.even_split(3, 5)

    def test_from_sizes(self):
        p = PartitionRange.from_sizes([2, 3, 1])
        assert [c.size for c in p.children] == [2, 3, 1]
        assert p.stop == 6

    def test_from_sizes_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PartitionRange.from_sizes([2, 0])


class TestQftIaIeGates:
    def test_ia_gates_are_a_local_qft(self):
        gates = qft_ia_gates(range(2, 5))
        hs = [g for g in gates if g.kind == GateKind.H]
        cps = [g for g in gates if g.kind == GateKind.CPHASE]
        assert [g.qubits[0] for g in hs] == [2, 3, 4]
        assert {g.qubits for g in cps} == {(2, 3), (2, 4), (3, 4)}

    def test_ie_gates_cover_the_cross_product(self):
        gates = qft_ie_gates(range(0, 2), range(2, 4))
        assert {g.qubits for g in gates} == {(0, 2), (0, 3), (1, 2), (1, 3)}

    def test_ie_relaxed_only_reorders(self):
        strict = qft_ie_gates(range(0, 3), range(3, 6), relaxed_order=False)
        relaxed = qft_ie_gates(range(0, 3), range(3, 6), relaxed_order=True)
        assert {g.qubits for g in strict} == {g.qubits for g in relaxed}
        assert [g.qubits for g in strict] != [g.qubits for g in relaxed]


class TestPartitionedQft:
    @pytest.mark.parametrize("n,k", [(4, 2), (5, 2), (6, 3), (8, 4), (7, 3)])
    def test_same_gate_multiset_as_textbook(self, n, k):
        base = qft_circuit(n)
        part = qft_partitioned(n, k=k)
        assert part.count(GateKind.H) == base.count(GateKind.H)
        assert part.interaction_pairs() == base.interaction_pairs()

    @pytest.mark.parametrize("n,k", [(3, 2), (4, 2), (5, 2), (5, 3), (6, 3)])
    def test_unitary_equivalent_to_textbook(self, n, k):
        u1 = circuit_unitary(qft_circuit(n))
        u2 = circuit_unitary(qft_partitioned(n, k=k))
        assert unitaries_equal_up_to_phase(u1, u2)

    @pytest.mark.parametrize("relaxed", [False, True])
    def test_relaxed_ie_is_also_equivalent(self, relaxed):
        u1 = circuit_unitary(qft_circuit(6))
        u2 = circuit_unitary(qft_partitioned(6, k=3, relaxed_ie=relaxed))
        assert unitaries_equal_up_to_phase(u1, u2)

    def test_nested_partition(self):
        inner = PartitionRange(0, 4, [PartitionRange(0, 2), PartitionRange(2, 4)])
        outer = PartitionRange(0, 6, [inner, PartitionRange(4, 6)])
        u1 = circuit_unitary(qft_circuit(6))
        u2 = circuit_unitary(qft_partitioned(6, outer))
        assert unitaries_equal_up_to_phase(u1, u2)

    def test_no_partition_returns_textbook(self):
        assert [g.qubits for g in qft_partitioned(5)] == [
            g.qubits for g in qft_circuit(5)
        ]

    def test_partition_must_cover_all_qubits(self):
        with pytest.raises(ValueError):
            qft_partitioned(6, PartitionRange(0, 4))

    def test_mutually_exclusive_selectors(self):
        with pytest.raises(ValueError):
            qft_partitioned(6, k=2, sizes=[3, 3])

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=6),
        data=st.data(),
    )
    def test_random_partitions_preserve_the_unitary(self, n, data):
        # draw a random composition of n into parts
        sizes = []
        remaining = n
        while remaining > 0:
            s = data.draw(st.integers(min_value=1, max_value=remaining))
            sizes.append(s)
            remaining -= s
        circ = qft_partitioned(n, sizes=sizes)
        u1 = circuit_unitary(qft_circuit(n))
        u2 = circuit_unitary(circ)
        assert unitaries_equal_up_to_phase(u1, u2)
