"""Tests for the SATMAP stand-in (exact router with timeout)."""

import pytest

from helpers import assert_valid_qft
from repro.arch import GridTopology, LNNTopology
from repro.baselines import SatmapMapper, SatmapTimeout
from repro.circuit import Circuit


class TestSatmapCorrectness:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_line_instances(self, n):
        mapped = SatmapMapper(LNNTopology(n), timeout_s=30).map_qft()
        assert_valid_qft(mapped, n)

    def test_grid_2x2(self):
        mapped = SatmapMapper(GridTopology(2, 2), timeout_s=30).map_qft()
        assert_valid_qft(mapped, 4)

    def test_grid_2x3(self):
        mapped = SatmapMapper(GridTopology(2, 3), timeout_s=60).map_qft()
        assert_valid_qft(mapped, 6)


class TestSatmapOptimality:
    def test_line3_needs_exactly_one_swap(self):
        # QFT-3 on a line: gates (0,1), (0,2), (1,2); only (0,2) is distant;
        # a single SWAP suffices and is necessary.
        mapped = SatmapMapper(LNNTopology(3), timeout_s=30).map_qft()
        assert mapped.swap_count() == 1

    def test_grid_2x2_matches_known_optimum(self):
        # Table 1 row "2*2 Sycamore": SATMAP needs 3 SWAPs for QFT-4 on the
        # degree-limited Sycamore cell; on the fully-linked 2x2 grid the
        # optimum is 2 (only the two diagonal pairs are distant and one SWAP
        # fixes each).
        mapped = SatmapMapper(GridTopology(2, 2), timeout_s=30).map_qft()
        assert mapped.swap_count() <= 2

    def test_never_more_swaps_than_greedy(self):
        from repro.core import GreedyRouterMapper

        topo = LNNTopology(4)
        exact = SatmapMapper(topo, timeout_s=30).map_qft()
        greedy = GreedyRouterMapper(topo).map_qft()
        assert exact.swap_count() <= greedy.swap_count()


class TestSatmapTimeout:
    def test_times_out_on_large_instances(self):
        # mirror of the paper's TLE behaviour: beyond ~10 qubits the exact
        # search cannot finish in a reasonable budget
        mapper = SatmapMapper(GridTopology(4, 4), timeout_s=0.2)
        with pytest.raises(SatmapTimeout):
            mapper.map_qft()

    def test_timeout_is_a_timeout_error(self):
        assert issubclass(SatmapTimeout, TimeoutError)

    def test_non_qft_circuit(self):
        topo = LNNTopology(3)
        circ = Circuit(3).h(0).cnot(0, 2).cnot(1, 2)
        mapped = SatmapMapper(topo, timeout_s=20).map_circuit(circ)
        for op in mapped.ops:
            if op.is_two_qubit:
                assert topo.has_edge(*op.physical)
        assert len([op for op in mapped.ops if op.kind == "cnot"]) == 2
