"""Tests for the SQLite experiment store (repro.store).

The store is a *view-preserving* unification: ``ResultCache`` on a
``*.db`` path, the journal's store sink, bench history and the perf
gate's ``--db`` baseline all go through it.  These tests hold each view
to the contract of the format it replaces -- same keys, same bytes, same
merge semantics -- plus the store-only surfaces (queries, gc, CLI,
legacy import).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.eval import (
    CacheMergeConflict,
    CompilationResult,
    ResultCache,
    RunJournal,
    adhoc_plan,
    execute,
)
from repro.eval.executors import run_specs
from repro.eval.parallel import CellSpec
from repro.store import (
    ExperimentStore,
    comparable_result,
    identity_columns,
    result_fingerprint,
)
from repro.store.__main__ import main as store_cli

REPO_ROOT = Path(__file__).resolve().parents[1]


def _result(depth=40, swaps=22, wall=0.1, **extra):
    return CompilationResult(
        "sabre", "Grid 3*3", 9, depth=depth, swap_count=swaps,
        compile_time_s=wall, verified=True, extra={"mapper": "sabre", **extra},
    )


class TestIdentityColumns:
    def test_engine_kwargs_filtered_out_of_columns(self):
        plain = identity_columns("sabre", "grid", 3, (("seed", 1),))
        forked = identity_columns(
            "sabre", "grid", 3, (("seed", 1), ("kernel", "python"))
        )
        assert plain == forked
        assert "seed" in plain["kwargs"] and "kernel" not in forked["kwargs"]

    def test_real_options_do_land_in_columns(self):
        a = identity_columns("sabre", "grid", 3, (("seed", 1),))
        b = identity_columns("sabre", "grid", 3, (("seed", 2),))
        assert a != b


class TestFingerprint:
    def test_volatile_fields_never_fork_the_fingerprint(self):
        a = _result(wall=0.1, kernel="c").to_dict()
        b = _result(wall=9.9, kernel="python").to_dict()
        assert result_fingerprint(a) == result_fingerprint(b)
        assert comparable_result(a) == comparable_result(b)

    def test_metric_fields_do_fork_it(self):
        assert result_fingerprint(_result(depth=40).to_dict()) != result_fingerprint(
            _result(depth=41).to_dict()
        )


class TestStoreCore:
    def test_put_get_roundtrip_is_bit_equal(self, tmp_path):
        store = ExperimentStore(tmp_path / "s.db")
        res = _result()
        store.put_cell("a" * 24, res, code="v1")
        assert store.get_cell("a" * 24) == res.to_dict()
        assert store.get_cell("b" * 24) is None
        store.close()

    def test_put_overwrites_and_refreshes_metrics(self, tmp_path):
        with ExperimentStore(tmp_path / "s.db") as store:
            store.put_cell("a" * 24, _result(depth=40))
            store.put_cell("a" * 24, _result(depth=41))
            assert store.get_cell("a" * 24)["depth"] == 41
            assert store.counts()["cells"] == 1
            rows = store._conn.execute(
                "SELECT value FROM metrics WHERE name = 'depth'"
            ).fetchall()
            assert [r[0] for r in rows] == [41.0]

    def test_query_cells_by_spec_columns(self, tmp_path):
        with ExperimentStore(tmp_path / "s.db") as store:
            for i, approach in enumerate(("sabre", "ours")):
                store.put_cell(
                    f"{i}" * 24,
                    _result(),
                    identity=identity_columns(approach, "grid", 3),
                )
            rows = store.query_cells(approach="sabre")
            assert len(rows) == 1
            assert rows[0]["approach"] == "sabre"
            assert rows[0]["depth"] == 40  # metric lifted from the result JSON
            assert store.query_cells(min_qubits=10) == []

    def test_gc_drops_only_named_versions_and_keeps_history(self, tmp_path):
        with ExperimentStore(tmp_path / "s.db") as store:
            store.put_cell("a" * 24, _result(), code="v1")
            store.put_cell("b" * 24, _result(), code="v2")
            run_id = store.begin_run({"experiment": "t"})
            store.finish_run(run_id)
            dry = store.gc(codes=("v1",), dry_run=True)
            assert dry == {
                "codes_dropped": ["v1"], "cells_deleted": 1, "dry_run": True,
            }
            assert store.counts()["cells"] == 2  # dry run touched nothing
            store.gc(codes=("v1",))
            assert store.counts()["cells"] == 1
            assert store.counts()["runs"] == 1  # history is never collected
            assert [v["version"] for v in store.code_versions()] == ["v2"]

    def test_schema_version_mismatch_refuses_to_open(self, tmp_path):
        path = tmp_path / "s.db"
        ExperimentStore(path).close()
        import sqlite3

        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '999' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="schema version"):
            ExperimentStore(path)


class TestStoreBackedCache:
    """ResultCache on a ``*.db`` path: the directory cache's contract."""

    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.db")
        key = cache.key("sabre", "grid", 3, (("seed", 1),))
        assert cache.get(key) is None
        cache.put(key, _result())
        got = cache.get(key)
        assert got is not None
        assert got.depth == 40 and got.swap_count == 22 and got.verified is True
        assert got.extra["cache"] == "hit"
        assert cache.stats() == {"hits": 1, "misses": 1}
        assert len(cache) == 1
        cache.close()

    def test_same_key_as_directory_cache(self, tmp_path):
        """A .db path must not fork keys: shards on different backends
        still share cache entries after a merge."""

        dir_cache = ResultCache(tmp_path / "dir")
        db_cache = ResultCache(tmp_path / "cache.db")
        spec = CellSpec.make("sabre", "grid", 2, seed=0)
        args = (spec.approach, spec.kind, spec.size, spec.kwargs,
                spec.rename, spec.timeout_s)
        assert dir_cache.key(*args) == db_cache.key(*args)
        db_cache.close()

    def test_engine_kwargs_do_not_fork_key_or_columns(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.db")
        plain = cache.key("sabre", "grid", 3, (("seed", 1),))
        forked = cache.key(
            "sabre", "grid", 3, (("seed", 1), ("kernel", "python"))
        )
        assert plain == forked
        cache.put(plain, _result())
        rows = cache.store.query_cells(approach="sabre")
        assert "kernel" not in rows[0]["kwargs"]
        cache.close()

    def test_second_sweep_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.db")
        specs = [
            CellSpec.make("sabre", "grid", 2, seed=s, rename=f"sabre-seed{s}")
            for s in range(3)
        ]
        cold = run_specs(specs, cache=cache)
        assert cache.stats()["hits"] == 0
        warm = run_specs(specs, cache=cache)
        assert cache.stats()["hits"] == 3
        assert [r.depth for r in warm] == [r.depth for r in cold]
        assert all(r.extra.get("cache") == "hit" for r in warm)
        cache.close()

    def test_timeout_results_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache.db")
        specs = [CellSpec.make("satmap", "sycamore", 4, timeout_s=0.01)]
        first = run_specs(specs, cache=cache)
        assert first[0].status == "timeout"
        assert len(cache) == 0
        run_specs(specs, cache=cache)
        assert cache.stats()["hits"] == 0
        cache.close()

    def test_version_change_invalidates(self, tmp_path):
        cache_v1 = ResultCache(tmp_path / "cache.db", version="v1")
        specs = [CellSpec.make("ours", "heavyhex", 2)]
        run_specs(specs, cache=cache_v1)
        cache_v1.close()
        cache_v2 = ResultCache(tmp_path / "cache.db", version="v2")
        run_specs(specs, cache=cache_v2)
        assert cache_v2.stats()["hits"] == 0
        assert len(cache_v2) == 2  # both versions stored side by side
        cache_v2.close()


class TestStoreMerge:
    """The SQL-constraint form of cache merge, in every direction."""

    def _shard(self, root, seeds, version="v1"):
        cache = ResultCache(root, version=version)
        run_specs(
            [CellSpec.make("sabre", "grid", 2, seed=s) for s in seeds],
            cache=cache,
        )
        return cache

    def test_directory_shards_merge_into_a_store(self, tmp_path):
        a = self._shard(tmp_path / "a", (0, 1))
        self._shard(tmp_path / "b", (2, 3))
        merged = ResultCache(tmp_path / "merged.db", version="v1")
        assert merged.merge(tmp_path / "a") == {
            "imported": 2, "skipped": 0, "invalid": 0,
        }
        assert merged.merge(tmp_path / "b") == {
            "imported": 2, "skipped": 0, "invalid": 0,
        }
        again = merged.merge(a.root)
        assert again == {"imported": 0, "skipped": 2, "invalid": 0}
        all_specs = [CellSpec.make("sabre", "grid", 2, seed=s) for s in range(4)]
        results = run_specs(all_specs, cache=merged)
        assert merged.stats() == {"hits": 4, "misses": 0}
        assert all(r.ok for r in results)
        merged.close()

    def test_store_to_store_merge(self, tmp_path):
        a = ResultCache(tmp_path / "a.db", version="v1")
        run_specs([CellSpec.make("sabre", "grid", 2, seed=0)], cache=a)
        a.close()
        b = ResultCache(tmp_path / "b.db", version="v1")
        assert b.merge(tmp_path / "a.db") == {
            "imported": 1, "skipped": 0, "invalid": 0,
        }
        # identity columns must survive the hop for indexed queries
        assert b.store.query_cells(approach="sabre", kind="grid", size=2)
        b.close()

    def test_store_drains_back_into_a_directory(self, tmp_path):
        db = self._shard(tmp_path / "src.db", (0, 1))
        db.close()
        dest = ResultCache(tmp_path / "dest", version="v1")
        assert dest.merge(tmp_path / "src.db") == {
            "imported": 2, "skipped": 0, "invalid": 0,
        }
        warm = run_specs(
            [CellSpec.make("sabre", "grid", 2, seed=s) for s in (0, 1)],
            cache=dest,
        )
        assert dest.stats() == {"hits": 2, "misses": 0}
        assert all(r.ok for r in warm)

    def test_merge_conflict_is_a_sql_constraint(self, tmp_path):
        """Divergent metrics under one key must raise from the UNIQUE
        constraint path, naming the differing field."""

        a = ResultCache(tmp_path / "a", version="v1")
        key = a.key("sabre", "grid", 2, ())
        a.put(key, CompilationResult("sabre", "Grid 2*2", 4, depth=9, swap_count=2))
        dest = ResultCache(tmp_path / "dest.db", version="v1")
        dest.merge(a.root)
        (a.root / f"{key}.json").unlink()
        a.put(key, CompilationResult("sabre", "Grid 2*2", 4, depth=99, swap_count=2))
        with pytest.raises(CacheMergeConflict, match="depth"):
            dest.merge(a.root)
        dest.close()

    def test_merge_tolerates_wall_clock_and_kernel_differences(self, tmp_path):
        a = ResultCache(tmp_path / "a", version="v1")
        key = a.key("sabre", "grid", 2, ())
        a.put(key, CompilationResult(
            "sabre", "Grid 2*2", 4, depth=9, compile_time_s=0.5,
            extra={"kernel": "c"},
        ))
        dest = ResultCache(tmp_path / "dest.db", version="v1")
        dest.merge(a.root)
        (a.root / f"{key}.json").unlink()
        a.put(key, CompilationResult(
            "sabre", "Grid 2*2", 4, depth=9, compile_time_s=1.5,
            extra={"kernel": "python"},
        ))
        stats = dest.merge(a.root)
        assert stats == {"imported": 0, "skipped": 1, "invalid": 0}
        dest.close()

    def test_merge_counts_and_ignores_corrupt_entries(self, tmp_path):
        a = self._shard(tmp_path / "a", (0, 1))
        (a.root / ("0" * 24 + ".json")).write_text("{broken", encoding="utf-8")
        dest = ResultCache(tmp_path / "dest.db", version="v1")
        stats = dest.merge(a.root)
        assert stats["imported"] == 2 and stats["invalid"] == 1
        dest.close()

    def test_merge_missing_source_raises(self, tmp_path):
        dest = ResultCache(tmp_path / "dest.db")
        with pytest.raises(FileNotFoundError):
            dest.merge(tmp_path / "nope")
        with pytest.raises(FileNotFoundError):
            dest.merge(tmp_path / "nope.db")
        dest.close()


class TestStoreSink:
    """The journal's store sink: runs + run_cells next to (or instead of)
    the JSONL journal."""

    def _plan(self, n=3):
        return adhoc_plan(
            "mini", [CellSpec.make("sabre", "grid", 2, seed=s) for s in range(n)]
        )

    def test_store_run_is_bit_equal_to_the_jsonl_journal(self, tmp_path):
        p = self._plan()
        report = execute(
            p, journal=str(tmp_path / "j"), store=str(tmp_path / "s.db")
        )
        assert report.store == str(tmp_path / "s.db")
        journal = RunJournal.open(tmp_path / "j")
        journal_results = {k: r.to_dict() for k, r in journal.results().items()}
        journal.close()
        with ExperimentStore(tmp_path / "s.db") as store:
            runs = store.list_runs()
            assert len(runs) == 1
            assert runs[0]["executor"] == "shard-coordinator"
            assert runs[0]["finished_at"] is not None
            assert json.loads(runs[0]["status_counts"]) == {"ok": 3}
            assert store.run_results(runs[0]["id"]) == journal_results

    def test_store_only_run_records_without_a_journal(self, tmp_path):
        p = self._plan()
        report = execute(p, store=str(tmp_path / "s.db"))
        assert report.executor == "shard-coordinator"
        with ExperimentStore(tmp_path / "s.db") as store:
            runs = store.list_runs()
            assert runs[0]["appended"] == 3
            results = store.run_results(runs[0]["id"])
            assert len(results) == 3
            assert all(r["status"] == "ok" for r in results.values())

    def test_resume_with_store_records_the_resumed_run(self, tmp_path):
        from repro.eval import chaos

        p = self._plan()
        execute(p, journal=str(tmp_path / "j"))
        path = tmp_path / "j" / "journal.jsonl"
        raw = path.read_bytes()
        chaos.tear_tail(path, len(raw) - 7)  # rip into the last record
        resumed = execute(
            p, resume=str(tmp_path / "j"), store=str(tmp_path / "s.db")
        )
        assert resumed.resumed == len(p.cells) - 1
        with ExperimentStore(tmp_path / "s.db") as store:
            runs = store.list_runs()
            # only the recomputed cell was appended this run
            assert runs[0]["appended"] == 1

    def test_dispatch_executor_records_through_the_tee(self, tmp_path):
        p = self._plan()
        report = execute(
            p,
            executor="dispatch",
            jobs=2,
            journal=str(tmp_path / "j"),
            store=str(tmp_path / "s.db"),
        )
        assert report.status_counts.get("ok") == 3
        journal = RunJournal.open(tmp_path / "j")
        journal_results = {k: r.to_dict() for k, r in journal.results().items()}
        journal.close()
        with ExperimentStore(tmp_path / "s.db") as store:
            runs = store.list_runs()
            assert runs[0]["executor"] == "dispatch"
            assert store.run_results(runs[0]["id"]) == journal_results


class TestImportLegacy:
    def test_committed_bench_snapshots_roundtrip(self, tmp_path):
        from repro.store import legacy

        snapshots = legacy.default_bench_snapshots(REPO_ROOT)
        assert len(snapshots) >= 3  # the repo commits its perf trajectory
        with ExperimentStore(tmp_path / "s.db") as store:
            for path in snapshots:
                info = legacy.import_bench_file(store, path)
                payload = json.loads(Path(path).read_text(encoding="utf-8"))
                stored = store.bench_payload(info["bench_id"])
                assert stored["commit"] == payload.get("commit")
                # group order and per-cell records are bit-equal (group-level
                # run reports are JSON-file detail the gate never reads)
                assert [g["name"] for g in stored["groups"]] == [
                    g["name"] for g in payload["groups"]
                ]
                for got, src in zip(stored["groups"], payload["groups"]):
                    assert got["cells"] == src["cells"]

    def test_latest_baseline_prefers_newest_timestamp(self, tmp_path):
        base = {"suite": "smoke", "commit": "c1", "groups": []}
        with ExperimentStore(tmp_path / "s.db") as store:
            store.record_bench({**base, "timestamp": "2026-01-01T00:00:00+00:00"})
            store.record_bench(
                {**base, "commit": "c2", "timestamp": "2026-02-01T00:00:00+00:00"}
            )
            assert store.latest_baseline("smoke")["commit"] == "c2"
            assert store.latest_baseline("smoke", commit="c1")["commit"] == "c1"
            assert store.latest_baseline("full") is None

    def test_journal_dir_import(self, tmp_path):
        from repro.store import legacy

        p = adhoc_plan(
            "mini", [CellSpec.make("sabre", "grid", 2, seed=s) for s in range(2)]
        )
        execute(p, journal=str(tmp_path / "j"))
        with ExperimentStore(tmp_path / "s.db") as store:
            info = legacy.import_journal_dir(store, tmp_path / "j")
            assert info["cells"] == 2
            journal = RunJournal.open(tmp_path / "j")
            assert store.run_results(info["run_id"]) == {
                k: r.to_dict() for k, r in journal.results().items()
            }
            journal.close()
            assert store.list_runs()[0]["executor"] == "import-legacy"

    def test_cache_dir_import(self, tmp_path):
        cache = ResultCache(tmp_path / "c", version="v1")
        run_specs([CellSpec.make("sabre", "grid", 2, seed=0)], cache=cache)
        from repro.store import legacy

        with ExperimentStore(tmp_path / "s.db") as store:
            stats = legacy.import_cache_dir(store, tmp_path / "c")
            assert stats == {"imported": 1, "skipped": 0, "invalid": 0}


class TestStoreCLI:
    """``python -m repro.store`` argv-level behaviour (in-process)."""

    def _seeded_db(self, tmp_path):
        db = tmp_path / "s.db"
        with ExperimentStore(db) as store:
            store.put_cell(
                "a" * 24, _result(), code="v1",
                identity=identity_columns("sabre", "grid", 3, (("seed", 1),)),
            )
            store.record_bench(
                {
                    "suite": "smoke",
                    "commit": "c1",
                    "timestamp": "2026-01-01T00:00:00+00:00",
                    "groups": [
                        {
                            "name": "g",
                            "cells": [
                                {
                                    "workload": "qft", "approach": "sabre",
                                    "kind": "grid", "size": 3, "status": "ok",
                                    "compile_time_s": 0.25,
                                }
                            ],
                        }
                    ],
                }
            )
        return db

    def test_query(self, tmp_path, capsys):
        db = self._seeded_db(tmp_path)
        assert store_cli(["query", str(db), "--approach", "sabre"]) == 0
        out = capsys.readouterr()
        assert "sabre" in out.out and "1 cell(s)" in out.err
        assert store_cli(["query", str(db), "--approach", "nope"]) == 0
        assert "(no rows)" in capsys.readouterr().out

    def test_query_json(self, tmp_path, capsys):
        db = self._seeded_db(tmp_path)
        assert store_cli(["query", str(db), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["approach"] == "sabre" and rows[0]["depth"] == 40

    def test_history(self, tmp_path, capsys):
        db = self._seeded_db(tmp_path)
        assert store_cli(["history", str(db), "--suite", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "0.250" in out and "c1" in out

    def test_info_and_gc(self, tmp_path, capsys):
        db = self._seeded_db(tmp_path)
        assert store_cli(["info", str(db)]) == 0
        out = capsys.readouterr().out
        assert "cells: 1" in out.replace("  ", " ").replace("  ", " ")
        assert store_cli(["gc", str(db), "--code", "v1", "--dry-run"]) == 0
        assert "would drop 1 cell(s)" in capsys.readouterr().out
        assert store_cli(["gc", str(db), "--code", "v1"]) == 0
        assert "dropped 1 cell(s)" in capsys.readouterr().out
        assert store_cli(["query", str(db)]) == 0
        assert "(no rows)" in capsys.readouterr().out

    def test_import_legacy_requires_a_source(self, tmp_path):
        with pytest.raises(SystemExit):
            store_cli(["import-legacy", str(tmp_path / "s.db")])

    def test_gc_requires_a_policy(self, tmp_path):
        with pytest.raises(SystemExit):
            store_cli(["gc", str(tmp_path / "s.db")])

    def test_import_legacy_bench(self, tmp_path, capsys):
        db = tmp_path / "s.db"
        rc = store_cli(
            [
                "import-legacy", str(db),
                "--bench", str(REPO_ROOT / "BENCH_baseline_smoke.json"),
            ]
        )
        assert rc == 0
        assert "suite smoke" in capsys.readouterr().out
        with ExperimentStore(db) as store:
            assert store.latest_baseline("smoke") is not None


class TestExperimentsCLI:
    def test_store_flag_records_a_run(self, tmp_path, capsys):
        from repro.eval.experiments import main

        db = tmp_path / "s.db"
        rc = main(["-e", "fig27", "--profile", "quick", "--store", str(db)])
        assert rc == 0
        with ExperimentStore(db) as store:
            runs = store.list_runs()
            assert len(runs) == 1
            assert runs[0]["experiment"] == "fig27"
            assert runs[0]["appended"] > 0

    def test_store_requires_single_experiment(self, tmp_path):
        from repro.eval.experiments import main

        with pytest.raises(SystemExit):
            main(["-e", "fig27", "-e", "fig17", "--store", str(tmp_path / "s.db")])


class TestPerfGateDb:
    """scripts/perf_gate.py --db: store-queried baseline with JSON fallback."""

    def _gate(self, *argv):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "perf_gate.py"), *argv],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )

    def _current(self, tmp_path, wall=0.1):
        payload = {
            "suite": "smoke",
            "commit": "cur",
            "timestamp": "2026-02-01T00:00:00+00:00",
            "groups": [
                {
                    "name": "g",
                    "cells": [
                        {
                            "workload": "qft", "approach": "sabre",
                            "kind": "grid", "size": 3, "status": "ok",
                            "compile_time_s": wall,
                        }
                    ],
                }
            ],
        }
        path = tmp_path / "cur.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def _db_with_baseline(self, tmp_path, wall=0.1):
        db = tmp_path / "s.db"
        with ExperimentStore(db) as store:
            store.record_bench(
                {
                    "suite": "smoke",
                    "commit": "base",
                    "timestamp": "2026-01-01T00:00:00+00:00",
                    "groups": [
                        {
                            "name": "g",
                            "cells": [
                                {
                                    "workload": "qft", "approach": "sabre",
                                    "kind": "grid", "size": 3, "status": "ok",
                                    "compile_time_s": wall,
                                }
                            ],
                        }
                    ],
                },
                source="seed",
            )
        return db

    def test_gate_passes_against_store_baseline(self, tmp_path):
        cur = self._current(tmp_path, wall=0.1)
        db = self._db_with_baseline(tmp_path, wall=0.1)
        proc = self._gate(str(cur), "--db", str(db))
        assert proc.returncode == 0, proc.stderr
        assert "store s.db" in proc.stdout and "commit base" in proc.stdout

    def test_gate_fails_on_regression_from_store_baseline(self, tmp_path):
        cur = self._current(tmp_path, wall=10.0)
        db = self._db_with_baseline(tmp_path, wall=0.1)
        proc = self._gate(str(cur), "--db", str(db))
        assert proc.returncode == 1
        assert "qft/sabre on grid-3" in proc.stderr

    def test_missing_store_falls_back_to_json_baseline(self, tmp_path):
        cur = self._current(tmp_path, wall=0.1)
        base = self._current(tmp_path, wall=0.1).rename(tmp_path / "base.json")
        cur = self._current(tmp_path, wall=0.1)
        proc = self._gate(
            str(cur), "--db", str(tmp_path / "missing.db"),
            "--baseline", str(base),
        )
        # The fallback is visible, then the gate runs against the JSON file.
        assert "falling back to base.json" in proc.stdout
        assert proc.returncode == 0, proc.stderr
        assert "baseline source: committed JSON base.json" in proc.stdout
        assert "of committed JSON base.json" in proc.stdout

    def test_baseline_source_named_on_every_path(self, tmp_path):
        # store hit, JSON fallback and FAIL verdict all name their source
        db = self._db_with_baseline(tmp_path, wall=0.1)
        hit = self._gate(str(self._current(tmp_path, wall=0.1)), "--db", str(db))
        assert "baseline source: store s.db (commit base" in hit.stdout
        fail = self._gate(str(self._current(tmp_path, wall=10.0)), "--db", str(db))
        assert fail.returncode == 1
        assert "baseline source: store s.db" in fail.stdout
        assert "of store s.db" in fail.stderr  # the verdict names it too

    def test_bench_store_flag_records_history(self, tmp_path):
        from repro.store import legacy

        db = tmp_path / "s.db"
        with ExperimentStore(db) as store:
            legacy.import_bench_file(
                store, REPO_ROOT / "BENCH_baseline_smoke.json"
            )
            assert store.counts()["bench"] == 1
