"""The curated top-level surface stays in lockstep with its docs.

``repro.__all__`` is the contract: every name in it must resolve, and
every name must appear in README.md's "Public API" table.  The retired
``compile_qft`` facade is the one deliberate exception -- importable for
old callers, warning, and *out* of ``__all__``.
"""

import re
import warnings
from pathlib import Path

import pytest

import repro
import repro.serve

README = Path(__file__).resolve().parents[1] / "README.md"


def _public_api_section() -> str:
    text = README.read_text()
    match = re.search(r"## Public API\n(.*?)\n## ", text, flags=re.S)
    assert match, "README.md lost its '## Public API' section"
    return match.group(1)


class TestAllIsReal:
    def test_every_name_resolves(self):
        missing = [n for n in repro.__all__ if not hasattr(repro, n)]
        assert missing == []

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_star_import_is_exactly_all(self):
        namespace = {}
        exec("from repro import *", namespace)  # noqa: S102 -- the contract
        exported = {n for n in namespace if not n.startswith("__")}
        assert exported == set(repro.__all__) - {"__version__"}


class TestReadmeTable:
    def test_every_exported_name_is_documented(self):
        section = _public_api_section()
        documented = set(re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`", section))
        undocumented = [n for n in repro.__all__ if n not in documented]
        assert undocumented == [], (
            "exported but missing from README's Public API table"
        )

    def test_table_names_nothing_private(self):
        # the table's backticked identifiers that *look like* exports must
        # actually be exports -- a renamed symbol must not leave its old
        # name advertised (generic words like `status` in prose are fine;
        # only rows' first column is checked)
        section = _public_api_section()
        rows = [
            line
            for line in section.splitlines()
            if line.startswith("|") and "`" in line.split("|")[2]
        ]
        advertised = set()
        for line in rows[1:]:  # skip the header row
            advertised.update(re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`", line.split("|")[2]))
        stale = sorted(advertised - set(repro.__all__))
        assert stale == [], "README advertises names repro does not export"


class TestDeprecatedFacade:
    def test_compile_qft_not_in_all(self):
        assert "compile_qft" not in repro.__all__

    def test_compile_qft_still_importable_and_warns(self):
        assert hasattr(repro, "compile_qft")
        topo = repro.GridTopology(3, 3)
        with pytest.warns(DeprecationWarning, match="repro.compile"):
            mapped = repro.compile_qft(topo)  # repro-lint: ignore[deprecated-api]
        direct = repro.compile(
            workload="qft", architecture=topo, approach="ours", verify=False
        ).mapped
        assert mapped.ops == direct.ops

    def test_star_import_does_not_leak_it(self):
        namespace = {}
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            exec("from repro import *", namespace)  # noqa: S102
        assert "compile_qft" not in namespace


class TestServeReexports:
    def test_wire_schema_objects_are_identical(self):
        # repro.CompileRequest IS repro.serve.CompileRequest -- one class,
        # two addresses; isinstance checks work across both spellings
        assert repro.CompileRequest is repro.serve.CompileRequest
        assert repro.CompileResponse is repro.serve.CompileResponse
        assert repro.ApiError is repro.serve.ApiError

    def test_versions_are_wellformed(self):
        # package version is semver; the wire version is its own integer
        # counter (bumped only on wire-incompatible schema changes)
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
        assert re.fullmatch(r"\d+", repro.serve.API_VERSION)
