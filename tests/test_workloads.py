"""Workload families: determinism, build validity, verification paths."""

import pytest

from repro import GridTopology, UnsupportedWorkload, get_workload
from repro.baselines import SabreMapper
from repro.circuit.gates import GateKind
from repro.circuit.qft import qft_circuit, textbook_qft_qubit_count
from repro.core import GreedyRouterMapper, mapper_for
from repro.verify.generic import check_mapped_matches_circuit
from repro.workloads import workload_names
from repro.workloads.qaoa import qaoa_graph


class TestBuilders:
    @pytest.mark.parametrize("name", ["qft", "qaoa", "random"])
    def test_build_is_deterministic(self, name):
        wl = get_workload(name)
        a = wl.build(8)
        b = wl.build(8)
        assert [str(g) for g in a.gates] == [str(g) for g in b.gates]

    def test_qaoa_seed_changes_instance(self):
        wl = get_workload("qaoa")
        a = wl.build(8, seed=0)
        b = wl.build(8, seed=1)
        assert [str(g) for g in a.gates] != [str(g) for g in b.gates]

    def test_random_seed_changes_instance(self):
        wl = get_workload("random")
        a = wl.build(8, seed=0)
        b = wl.build(8, seed=1)
        assert [str(g) for g in a.gates] != [str(g) for g in b.gates]

    def test_qaoa_graph_fallback_never_edgeless(self):
        assert qaoa_graph(4, seed=0, edge_prob=0.0) == [(0, 1), (1, 2), (2, 3)]

    def test_unknown_workload_param_raises(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            get_workload("qaoa").build(6, sede=3)
        with pytest.raises(ValueError, match="unknown parameter"):
            get_workload("qft").build(6, seed=1)  # qft takes no params

    def test_random_circuit_only_uses_supported_kinds(self):
        circ = get_workload("random").build(10, seed=3)
        kinds = {g.kind for g in circ.gates}
        assert kinds <= {GateKind.H, GateKind.RZ, GateKind.CPHASE, GateKind.CNOT}
        assert any(g.is_two_qubit for g in circ.gates)


class TestTextbookQFTDetection:
    def test_recognises_builder_output(self):
        for n in (1, 2, 5, 9):
            assert textbook_qft_qubit_count(qft_circuit(n)) == n

    def test_rejects_other_circuits(self):
        assert textbook_qft_qubit_count(get_workload("qaoa").build(5)) is None
        reordered = qft_circuit(4)
        reordered.gates.reverse()
        assert textbook_qft_qubit_count(reordered) is None


class TestGenericReplayCheck:
    def test_accepts_sabre_reordering(self):
        topo = GridTopology(3, 3)
        circ = get_workload("random").build(9, seed=2)
        mapped = SabreMapper(topo, seed=4).map_circuit(circ)
        assert check_mapped_matches_circuit(mapped, circ).ok

    def test_rejects_missing_gate(self):
        topo = GridTopology(3, 3)
        circ = get_workload("random").build(9, seed=2)
        mapped = SabreMapper(topo, seed=4).map_circuit(circ)
        dropped = next(
            i for i, op in enumerate(mapped.ops) if op.kind == GateKind.CPHASE
        )
        del mapped.ops[dropped]
        report = check_mapped_matches_circuit(mapped, circ)
        assert not report.ok

    def test_rejects_wrong_angle(self):
        topo = GridTopology(2, 2)
        circ = get_workload("qaoa").build(4, seed=1)
        mapped = SabreMapper(topo, seed=0).map_circuit(circ)
        idx = next(i for i, op in enumerate(mapped.ops) if op.kind == GateKind.CPHASE)
        op = mapped.ops[idx]
        mapped.ops[idx] = type(op)(
            op.kind, op.physical, op.logical, (op.angle or 0.0) + 0.5, op.tag
        )
        assert not check_mapped_matches_circuit(mapped, circ).ok


class TestVerification:
    @pytest.mark.parametrize("name", ["qaoa", "random"])
    def test_small_instances_get_unitary_cross_check(self, name):
        wl = get_workload(name)
        topo = GridTopology(2, 3)
        mapped = wl.map_with(SabreMapper(topo, seed=7), 6)
        res = wl.verify(mapped, 6)
        assert res.ok and res.unitary_checked

    @pytest.mark.parametrize("name", ["qaoa", "random"])
    def test_large_instances_use_structural_path(self, name):
        wl = get_workload(name)
        topo = GridTopology(4, 4)
        mapped = wl.map_with(SabreMapper(topo, seed=7), 16)
        res = wl.verify(mapped, 16)
        assert res.ok and not res.unitary_checked

    def test_greedy_router_handles_all_workloads(self):
        topo = GridTopology(3, 3)
        for name in workload_names():
            wl = get_workload(name)
            mapped = wl.map_with(GreedyRouterMapper(topo), 9)
            assert wl.verify(mapped, 9).ok, name


class TestSpecialistSurface:
    def test_specialist_maps_textbook_qft_via_map_circuit(self):
        topo = GridTopology(3, 3)
        specialist = mapper_for(topo)
        via_circuit = specialist.map_circuit(qft_circuit(9))
        via_qft = mapper_for(topo).map_qft(9)
        assert [str(op) for op in via_circuit.ops] == [str(op) for op in via_qft.ops]

    def test_specialist_raises_typed_error_for_other_workloads(self):
        topo = GridTopology(3, 3)
        with pytest.raises(UnsupportedWorkload):
            mapper_for(topo).map_circuit(get_workload("qaoa").build(9))

    def test_greedy_qft_map_circuit_equals_map_qft(self):
        topo = GridTopology(3, 3)
        a = GreedyRouterMapper(topo).map_qft(9)
        b = GreedyRouterMapper(topo).map_circuit(qft_circuit(9))
        assert [str(op) for op in a.ops] == [str(op) for op in b.ops]

    def test_greedy_refuses_program_level_swaps(self):
        # A program SWAP is indistinguishable from a routing SWAP in the
        # mapped stream (replay drops every SWAP), so compiling one silently
        # would produce the wrong unitary -- it must be a typed refusal.
        from repro.circuit import Circuit

        circ = Circuit(2).h(0).swap(0, 1)
        with pytest.raises(UnsupportedWorkload, match="SWAP"):
            GreedyRouterMapper(GridTopology(1, 2)).map_circuit(circ)
