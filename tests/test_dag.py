"""Tests for dependence analysis (Section 3.1: Type I vs Type II)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    CNOT,
    CPHASE,
    Circuit,
    DependenceRules,
    H,
    SWAP,
    build_dag,
    dag_depth,
    front_layers,
    gates_commute,
    qft_circuit,
    qft_type1_order_ok,
    qft_type2_order_ok,
)


class TestCommutation:
    def test_disjoint_gates_commute(self):
        assert gates_commute(H(0), H(1))
        assert gates_commute(CPHASE(0, 1, 0.1), CPHASE(2, 3, 0.2))

    def test_cphase_sharing_a_qubit_commute(self):
        # the core of Insight 1
        assert gates_commute(CPHASE(0, 1, 0.1), CPHASE(0, 2, 0.2))
        assert gates_commute(CPHASE(0, 2, 0.1), CPHASE(1, 2, 0.2))

    def test_h_does_not_commute_with_cphase_on_shared_qubit(self):
        assert not gates_commute(H(0), CPHASE(0, 1, 0.1))

    def test_h_on_same_qubit_do_not_commute_conservatively(self):
        # two H on the same qubit actually commute, but the conservative rule
        # keeps them ordered, which is always safe
        assert not gates_commute(H(0), H(0))

    def test_identical_swaps_commute(self):
        assert gates_commute(SWAP(0, 1), SWAP(1, 0))

    def test_different_swaps_sharing_qubit_do_not(self):
        assert not gates_commute(SWAP(0, 1), SWAP(1, 2))

    def test_cnot_sharing_qubit_does_not_commute(self):
        assert not gates_commute(CNOT(0, 1), CNOT(1, 2))


class TestDependenceRules:
    def test_strict_orders_everything_sharing_a_qubit(self):
        rules = DependenceRules(relaxed=False)
        assert rules.must_order(CPHASE(0, 1, 0.1), CPHASE(0, 2, 0.2))

    def test_relaxed_drops_type1(self):
        rules = DependenceRules(relaxed=True)
        assert not rules.must_order(CPHASE(0, 1, 0.1), CPHASE(0, 2, 0.2))

    def test_relaxed_keeps_type2(self):
        rules = DependenceRules(relaxed=True)
        assert rules.must_order(CPHASE(0, 1, 0.1), H(1))
        assert rules.must_order(H(0), CPHASE(0, 1, 0.1))

    def test_disjoint_never_ordered(self):
        for relaxed in (False, True):
            assert not DependenceRules(relaxed).must_order(H(0), H(5))


class TestBuildDag:
    def test_qft_relaxed_dag_has_fewer_edges_than_strict(self):
        c = qft_circuit(6)
        strict = build_dag(c, DependenceRules(relaxed=False))
        relaxed = build_dag(c, DependenceRules(relaxed=True))
        assert relaxed.number_of_edges() < strict.number_of_edges()
        assert relaxed.number_of_nodes() == strict.number_of_nodes() == len(c)

    def test_front_layers_cover_all_gates(self):
        c = qft_circuit(5)
        dag = build_dag(c)
        layers = front_layers(dag)
        assert sum(len(l) for l in layers) == len(c)

    def test_relaxed_depth_not_larger_than_strict(self):
        c = qft_circuit(7)
        assert dag_depth(c, DependenceRules(True)) <= dag_depth(c, DependenceRules(False))

    def test_strict_qft_depth_matches_known_formula(self):
        # the textbook QFT has logical depth 2n - 1 under strict dependences
        for n in (2, 3, 5, 8):
            assert dag_depth(qft_circuit(n), DependenceRules(relaxed=False)) == 2 * n - 1

    def test_empty_circuit_depth_zero(self):
        assert dag_depth(Circuit(3)) == 0

    def test_chain_circuit_layers(self):
        c = Circuit(2).h(0).cphase(0, 1).h(1)
        layers = front_layers(build_dag(c))
        assert [sorted(l) for l in layers] == [[0], [1], [2]]


def _events_of(circuit):
    evs = []
    for g in circuit.gates:
        if g.kind == "h":
            evs.append(("h", g.qubits))
        elif g.kind == "cphase":
            evs.append(("cphase", g.qubits))
    return evs


class TestQftOrderCheckers:
    def test_textbook_order_satisfies_both(self):
        evs = _events_of(qft_circuit(6))
        assert qft_type2_order_ok(6, evs)[0]
        assert qft_type1_order_ok(6, evs)[0]

    def test_cphase_before_h_of_smaller_is_rejected(self):
        evs = [("cphase", (0, 1)), ("h", (0,)), ("h", (1,))]
        ok, msg = qft_type2_order_ok(2, evs)
        assert not ok and "before H(0)" in msg

    def test_cphase_after_h_of_larger_is_rejected(self):
        evs = [("h", (0,)), ("h", (1,)), ("cphase", (0, 1))]
        ok, msg = qft_type2_order_ok(2, evs)
        assert not ok and "after H(1)" in msg

    def test_type1_violation_detected_but_type2_ok(self):
        # swap the order of CP(0,1) and CP(0,2): fine under relaxed rules,
        # a violation under strict rules
        evs = [("h", (0,)), ("cphase", (0, 2)), ("cphase", (0, 1)), ("h", (1,)), ("h", (2,)), ]
        assert qft_type2_order_ok(3, evs)[0]
        ok, msg = qft_type1_order_ok(3, evs)
        assert not ok and "Type I" in msg

    def test_type1_violation_on_shared_larger_qubit(self):
        evs = [
            ("h", (0,)),
            ("h", (1,)),
            ("cphase", (1, 2)),
            ("cphase", (0, 2)),
            ("h", (2,)),
        ]
        assert qft_type2_order_ok(3, evs)[0]
        assert not qft_type1_order_ok(3, evs)[0]

    def test_unknown_event_kind_raises(self):
        with pytest.raises(ValueError):
            qft_type2_order_ok(2, [("swap", (0, 1))])

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=2, max_value=6), seed=st.integers(0, 10_000))
    def test_random_commuting_reorder_still_satisfies_type2(self, n, seed):
        """Randomly permuting gates while respecting Type II stays valid."""

        import random

        rng = random.Random(seed)
        # schedule gates greedily: maintain eligible set under Type II
        h_done = [False] * n
        pending = {(i, j) for i in range(n) for j in range(i + 1, n)}
        events = []
        while pending or not all(h_done):
            eligible = []
            for q in range(n):
                if not h_done[q] and all((i, q) not in pending for i in range(q)):
                    eligible.append(("h", (q,)))
            for (i, j) in sorted(pending):
                if h_done[i] and not h_done[j]:
                    eligible.append(("cphase", (i, j)))
            ev = rng.choice(eligible)
            events.append(ev)
            if ev[0] == "h":
                h_done[ev[1][0]] = True
            else:
                pending.discard(ev[1])
        assert qft_type2_order_ok(n, events)[0]
