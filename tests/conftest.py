"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.arch import (
    CaterpillarTopology,
    GridTopology,
    LatticeSurgeryTopology,
    LNNTopology,
    SycamoreTopology,
)
from repro.verify import verify_mapped_qft


@pytest.fixture
def line5() -> LNNTopology:
    return LNNTopology(5)


@pytest.fixture
def grid33() -> GridTopology:
    return GridTopology(3, 3)


@pytest.fixture
def sycamore4() -> SycamoreTopology:
    return SycamoreTopology(4)


@pytest.fixture
def lattice4() -> LatticeSurgeryTopology:
    return LatticeSurgeryTopology(4)


@pytest.fixture
def caterpillar10() -> CaterpillarTopology:
    return CaterpillarTopology.regular_groups(2)


def assert_valid_qft(mapped, n=None, *, strict=False, statevector_limit=7):
    """Assert a mapped circuit is a correct QFT (structure + small-n unitary)."""

    result = verify_mapped_qft(
        mapped, n, strict_order=strict, statevector_limit=statevector_limit
    )
    assert result.ok, result.summary()
    return result
