"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.arch import (
    CaterpillarTopology,
    GridTopology,
    LatticeSurgeryTopology,
    LNNTopology,
    SycamoreTopology,
)
from helpers import assert_valid_qft  # noqa: F401  (re-exported for fixtures/tests)


@pytest.fixture
def line5() -> LNNTopology:
    return LNNTopology(5)


@pytest.fixture
def grid33() -> GridTopology:
    return GridTopology(3, 3)


@pytest.fixture
def sycamore4() -> SycamoreTopology:
    return SycamoreTopology(4)


@pytest.fixture
def lattice4() -> LatticeSurgeryTopology:
    return LatticeSurgeryTopology(4)


@pytest.fixture
def caterpillar10() -> CaterpillarTopology:
    return CaterpillarTopology.regular_groups(2)
