"""Tests for the SABRE baseline re-implementation."""

import pytest

from helpers import assert_valid_qft
from repro.arch import (
    CaterpillarTopology,
    GridTopology,
    LatticeSurgeryTopology,
    LNNTopology,
    SycamoreTopology,
)
from repro.baselines import SabreMapper
from repro.circuit import Circuit, qft_circuit
from repro.verify import check_mapped_qft_structure


class TestSabreCorrectness:
    @pytest.mark.parametrize(
        "topo_factory",
        [
            lambda: LNNTopology(6),
            lambda: GridTopology(3, 3),
            lambda: SycamoreTopology(4),
            lambda: CaterpillarTopology.regular_groups(2),
            lambda: LatticeSurgeryTopology(4),
        ],
        ids=["lnn6", "grid3x3", "sycamore4", "caterpillar10", "lattice4"],
    )
    def test_produces_correct_qft(self, topo_factory):
        topo = topo_factory()
        mapped = SabreMapper(topo, seed=3).map_qft()
        assert_valid_qft(mapped, topo.num_qubits, statevector_limit=6)

    def test_preserves_strict_textbook_order(self):
        topo = GridTopology(2, 3)
        mapped = SabreMapper(topo, seed=1).map_qft()
        assert check_mapped_qft_structure(mapped, 6, strict_order=True).ok

    def test_all_two_qubit_ops_respect_coupling(self):
        topo = SycamoreTopology(4)
        mapped = SabreMapper(topo, seed=2).map_qft()
        for op in mapped.ops:
            if op.is_two_qubit:
                assert topo.has_edge(*op.physical)

    def test_partial_kernel_on_larger_device(self):
        topo = GridTopology(3, 3)
        mapped = SabreMapper(topo, seed=0).map_qft(5)
        assert mapped.num_logical == 5
        assert_valid_qft(mapped, 5, statevector_limit=5)

    def test_arbitrary_circuit_not_just_qft(self):
        topo = LNNTopology(4)
        circ = Circuit(4).h(0).cnot(0, 3).cnot(1, 2).cphase(0, 2, 0.5).h(3)
        mapped = SabreMapper(topo, seed=1).map_circuit(circ)
        # every original gate appears, plus inserted SWAPs
        assert mapped.cphase_count() == 1
        assert len([op for op in mapped.ops if op.kind == "cnot"]) == 2

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            SabreMapper(LNNTopology(3)).map_qft(4)


class TestSabreBehaviour:
    def test_deterministic_for_fixed_seed(self):
        topo = GridTopology(3, 3)
        a = SabreMapper(topo, seed=7).map_qft()
        b = SabreMapper(topo, seed=7).map_qft()
        assert a.swap_count() == b.swap_count()
        assert a.unit_depth() == b.unit_depth()
        assert [op.physical for op in a.ops] == [op.physical for op in b.ops]

    def test_output_varies_across_seeds(self):
        """Figure 27: SABRE's result depends on the random seed."""

        topo = GridTopology(3, 3)
        metrics = {
            (SabreMapper(topo, seed=s).map_qft().swap_count(),
             SabreMapper(topo, seed=s).map_qft().unit_depth())
            for s in range(6)
        }
        assert len(metrics) > 1

    def test_trivial_initial_layout_option(self):
        topo = LNNTopology(5)
        mapped = SabreMapper(topo, seed=0, trivial_initial_layout=True, passes=1).map_qft()
        assert mapped.initial_layout == [0, 1, 2, 3, 4]

    def test_more_passes_never_breaks_correctness(self):
        topo = GridTopology(3, 3)
        for passes in (1, 2, 3, 5):
            mapped = SabreMapper(topo, seed=4, passes=passes).map_qft()
            assert check_mapped_qft_structure(mapped, 9).ok

    def test_swap_count_recorded_in_metadata(self):
        topo = GridTopology(3, 3)
        mapped = SabreMapper(topo, seed=1).map_qft()
        assert mapped.metadata["mapper"] == "sabre"
        assert mapped.metadata["seed"] == 1

    def test_sabre_needs_more_swaps_than_ours_at_scale(self):
        """The paper's headline: the analytical mapper wins as size grows."""

        import repro

        topo = LatticeSurgeryTopology(6)
        ours = repro.compile(
            workload="qft", architecture=topo, approach="ours", verify=False
        ).mapped
        sabre = SabreMapper(topo, seed=0).map_qft()
        assert ours.depth() < sabre.depth()
