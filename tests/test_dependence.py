"""Tests for the QFTDependenceTracker (relaxed Type II bookkeeping)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QFTDependenceTracker


class TestBasicRules:
    def test_initial_state(self):
        t = QFTDependenceTracker(4)
        assert t.can_h(0)
        assert not t.can_h(1)
        assert not t.can_cphase(0, 1)  # H(0) not yet emitted
        assert not t.all_done()
        assert t.total_pairs == 6

    def test_single_qubit_kernel(self):
        t = QFTDependenceTracker(1)
        assert t.can_h(0)
        t.mark_h(0)
        assert t.all_done()

    def test_h_then_cphase_then_h(self):
        t = QFTDependenceTracker(2)
        t.mark_h(0)
        assert t.can_cphase(0, 1) and t.can_cphase(1, 0)
        t.mark_cphase(0, 1)
        assert t.can_h(1)
        t.mark_h(1)
        assert t.all_done()

    def test_cphase_before_h_rejected(self):
        t = QFTDependenceTracker(2)
        with pytest.raises(ValueError):
            t.mark_cphase(0, 1)

    def test_cphase_after_h_of_larger_rejected(self):
        t = QFTDependenceTracker(3)
        t.mark_h(0)
        t.mark_cphase(0, 1)
        t.mark_h(1)
        t.mark_cphase(0, 2)
        t.mark_cphase(1, 2)
        t.mark_h(2)
        with pytest.raises(ValueError):
            t.mark_cphase(1, 2)

    def test_double_h_rejected(self):
        t = QFTDependenceTracker(2)
        t.mark_h(0)
        with pytest.raises(ValueError):
            t.mark_h(0)

    def test_premature_h_rejected(self):
        t = QFTDependenceTracker(2)
        with pytest.raises(ValueError):
            t.mark_h(1)

    def test_double_cphase_rejected(self):
        t = QFTDependenceTracker(2)
        t.mark_h(0)
        t.mark_cphase(0, 1)
        with pytest.raises(ValueError):
            t.mark_cphase(1, 0)

    def test_cphase_same_qubit_rejected(self):
        t = QFTDependenceTracker(2)
        assert not t.can_cphase(1, 1)
        with pytest.raises(ValueError):
            t.mark_cphase(1, 1)


class TestQueries:
    def test_pending_partners(self):
        t = QFTDependenceTracker(4)
        t.mark_h(0)
        t.mark_cphase(0, 1)
        assert t.pending_partners(0) == [2, 3]
        assert 0 not in t.pending_partners(1)

    def test_pending_pairs_count(self):
        t = QFTDependenceTracker(4)
        assert len(t.pending_pairs()) == 6
        t.mark_h(0)
        t.mark_cphase(0, 3)
        assert len(t.pending_pairs()) == 5
        assert (0, 3) not in t.pending_pairs()

    def test_is_active(self):
        t = QFTDependenceTracker(3)
        assert not t.is_active(0)
        t.mark_h(0)
        assert t.is_active(0)
        t.mark_cphase(0, 1)
        t.mark_cphase(0, 2)
        assert not t.is_active(0)

    def test_all_pairs_done_within(self):
        t = QFTDependenceTracker(4)
        t.mark_h(0)
        t.mark_cphase(0, 1)
        assert t.all_pairs_done_within([0, 1])
        assert not t.all_pairs_done_within([0, 1, 2])
        assert t.all_pairs_done_within([3])

    def test_progress(self):
        t = QFTDependenceTracker(3)
        assert t.progress() == (0, 3)
        t.mark_h(0)
        t.mark_cphase(0, 1)
        assert t.progress() == (1, 3)

    def test_has_pending_pairs(self):
        t = QFTDependenceTracker(2)
        assert t.has_pending_pairs(0) and t.has_pending_pairs(1)
        t.mark_h(0)
        t.mark_cphase(0, 1)
        assert not t.has_pending_pairs(0)

    def test_needs_at_least_one_qubit(self):
        with pytest.raises(ValueError):
            QFTDependenceTracker(0)


class TestFullKernelProperty:
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=1, max_value=8), seed=st.integers(0, 10_000))
    def test_any_greedy_completion_is_accepted_and_terminates(self, n, seed):
        """Randomly interleaving eligible actions always completes the kernel."""

        import random

        rng = random.Random(seed)
        t = QFTDependenceTracker(n)
        steps = 0
        while not t.all_done():
            steps += 1
            assert steps < 10 * n * n + 10
            choices = []
            for q in range(n):
                if t.can_h(q):
                    choices.append(("h", q, None))
            for i in range(n):
                for j in range(i + 1, n):
                    if t.can_cphase(i, j):
                        choices.append(("cp", i, j))
            assert choices, "tracker deadlocked"
            kind, a, b = rng.choice(choices)
            if kind == "h":
                t.mark_h(a)
            else:
                t.mark_cphase(a, b)
        assert t.pairs_completed == t.total_pairs
        assert t.h_completed == n
