"""Tests for the LNN cascade engine (abstract and physical, Section 2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import GridTopology, LNNTopology
from repro.circuit import GateKind, MappingBuilder, qft_type2_order_ok
from repro.core import QFTDependenceTracker, abstract_line_qft_schedule, cascade_on_line
from repro.core.cascade import AbstractStep


class TestAbstractSchedule:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 6, 10, 17])
    def test_every_pair_interacts_exactly_once(self, k):
        steps = abstract_line_qft_schedule(k)
        cps = [s for s in steps if s.kind == "cphase"]
        assert len(cps) == k * (k - 1) // 2
        assert len({s.items for s in cps}) == len(cps)

    @pytest.mark.parametrize("k", [1, 2, 5, 12])
    def test_every_item_hadamarded_once(self, k):
        steps = abstract_line_qft_schedule(k)
        hs = [s.items[0] for s in steps if s.kind == "h"]
        assert sorted(hs) == list(range(k))

    @pytest.mark.parametrize("k", [2, 4, 8, 16])
    def test_type2_dependence_respected(self, k):
        steps = abstract_line_qft_schedule(k)
        events = []
        for s in steps:
            if s.kind == "h":
                events.append(("h", s.items))
            elif s.kind == "cphase":
                events.append(("cphase", s.items))
        ok, msg = qft_type2_order_ok(k, events)
        assert ok, msg

    @pytest.mark.parametrize("k", [2, 3, 5, 9])
    def test_two_item_steps_use_adjacent_positions(self, k):
        for s in abstract_line_qft_schedule(k):
            if len(s.positions) == 2:
                assert abs(s.positions[0] - s.positions[1]) == 1

    @pytest.mark.parametrize("k", [2, 3, 6, 10])
    def test_positions_consistent_with_swap_replay(self, k):
        line = list(range(k))
        for s in abstract_line_qft_schedule(k):
            resident = {line[p] for p in s.positions}
            assert resident == set(s.items), "schedule positions must match replay"
            if s.kind == "swap":
                p, q = s.positions
                line[p], line[q] = line[q], line[p]

    @pytest.mark.parametrize("k", [2, 4, 8, 16, 32])
    def test_layer_count_is_linear(self, k):
        steps = abstract_line_qft_schedule(k)
        depth = max(s.layer for s in steps) + 1
        assert depth <= 6 * k, f"abstract schedule depth {depth} is not linear-ish in {k}"

    def test_layers_have_disjoint_positions(self):
        steps = abstract_line_qft_schedule(9)
        by_layer = {}
        for s in steps:
            by_layer.setdefault(s.layer, []).append(s)
        for layer_steps in by_layer.values():
            used = [p for s in layer_steps for p in s.positions]
            assert len(used) == len(set(used))

    def test_single_item(self):
        steps = abstract_line_qft_schedule(1)
        assert len(steps) == 1 and steps[0].kind == "h"

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            abstract_line_qft_schedule(0)


class TestCascadeOnLine:
    def _run(self, n, line=None, topo=None, layout=None, participants=None):
        topo = topo or LNNTopology(n)
        line = line if line is not None else list(range(n))
        layout = layout if layout is not None else list(line)
        builder = MappingBuilder(topo, layout, num_logical=n)
        tracker = QFTDependenceTracker(n)
        stats = cascade_on_line(builder, tracker, line, participants=participants)
        return builder, tracker, stats

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 9, 16])
    def test_completes_the_kernel_on_a_line(self, n):
        builder, tracker, stats = self._run(n)
        assert tracker.all_done()
        assert stats["fallback_swaps"] == 0

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_depth_is_linear(self, n):
        builder, tracker, _ = self._run(n)
        mc = builder.build()
        assert mc.unit_depth() <= 6 * n

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_swap_count_close_to_pair_count(self, n):
        builder, tracker, _ = self._run(n)
        mc = builder.build()
        assert mc.swap_count() <= n * (n - 1) // 2 + n

    def test_final_order_reversed_for_identity_start(self):
        builder, tracker, _ = self._run(6)
        mc = builder.build()
        final = mc.final_layout()
        # the cascade stops moving a qubit once it has no pending work, so the
        # order is reversed up to a bounded tail
        assert final[0] >= 3

    def test_rejects_uncoupled_line(self):
        topo = GridTopology(2, 2)
        builder = MappingBuilder(topo, [0, 1, 3, 2])
        tracker = QFTDependenceTracker(4)
        with pytest.raises(ValueError):
            cascade_on_line(builder, tracker, [0, 3, 1, 2])

    def test_line_through_grid(self):
        topo = GridTopology(2, 3)
        line = topo.serpentine_order()
        builder = MappingBuilder(topo, line, num_logical=6)
        tracker = QFTDependenceTracker(6)
        cascade_on_line(builder, tracker, line)
        assert tracker.all_done()

    def test_participants_subset_only_completes_that_subset(self):
        n = 6
        topo = LNNTopology(n)
        builder = MappingBuilder(topo, list(range(n)), num_logical=n)
        tracker = QFTDependenceTracker(n)
        cascade_on_line(builder, tracker, [0, 1, 2], participants=[0, 1, 2])
        assert tracker.all_pairs_done_within([0, 1, 2])
        assert not tracker.pair_is_done(0, 3)

    def test_empty_participants_is_a_no_op(self):
        topo = LNNTopology(3)
        builder = MappingBuilder(topo, [], num_logical=3)
        tracker = QFTDependenceTracker(3)
        stats = cascade_on_line(builder, tracker, [0, 1, 2], participants=[])
        assert stats["layers"] == 0 and len(builder.ops) == 0

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=8),
        seed=st.integers(0, 10_000),
    )
    def test_arbitrary_starting_orders_still_complete(self, n, seed):
        """The cascade (with orientation flips) finishes from any placement."""

        import random

        rng = random.Random(seed)
        order = list(range(n))
        rng.shuffle(order)
        topo = LNNTopology(n)
        layout = [order.index(q) for q in range(n)]  # logical q at position order.index(q)
        builder = MappingBuilder(topo, layout, num_logical=n)
        tracker = QFTDependenceTracker(n)
        cascade_on_line(builder, tracker, list(range(n)))
        assert tracker.all_done()
        events = builder.build().logical_events()
        ok, msg = qft_type2_order_ok(n, events)
        assert ok, msg
