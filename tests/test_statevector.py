"""Tests for the dense statevector simulator used by the verifier."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, GateKind, qft_circuit
from repro.verify import (
    apply_gate,
    circuit_unitary,
    mapped_events_unitary,
    qft_reference_unitary,
    random_state,
    simulate_circuit,
    states_equal_up_to_phase,
    unitaries_equal_up_to_phase,
)


def basis(n, idx):
    v = np.zeros(2 ** n, dtype=complex)
    v[idx] = 1.0
    return v


class TestApplyGate:
    def test_h_on_single_qubit(self):
        out = apply_gate(basis(1, 0), 1, GateKind.H, (0,))
        assert np.allclose(out, np.array([1, 1]) / math.sqrt(2))

    def test_h_twice_is_identity(self):
        state = random_state(3, seed=1)
        out = apply_gate(apply_gate(state, 3, GateKind.H, (1,)), 3, GateKind.H, (1,))
        assert np.allclose(out, state)

    def test_cphase_only_phases_the_11_component(self):
        # |11> on 2 qubits is index 3
        out = apply_gate(basis(2, 3), 2, GateKind.CPHASE, (0, 1), math.pi / 2)
        assert out[3] == pytest.approx(1j)
        out0 = apply_gate(basis(2, 1), 2, GateKind.CPHASE, (0, 1), math.pi / 2)
        assert out0[1] == pytest.approx(1.0)

    def test_cphase_symmetric_in_qubit_order(self):
        state = random_state(3, seed=2)
        a = apply_gate(state, 3, GateKind.CPHASE, (0, 2), 0.7)
        b = apply_gate(state, 3, GateKind.CPHASE, (2, 0), 0.7)
        assert np.allclose(a, b)

    def test_swap_exchanges_amplitudes(self):
        # |10> -> |01>   (qubit 0 is the most significant bit)
        out = apply_gate(basis(2, 2), 2, GateKind.SWAP, (0, 1))
        assert np.allclose(out, basis(2, 1))

    def test_cnot_flips_target_when_control_set(self):
        out = apply_gate(basis(2, 2), 2, GateKind.CNOT, (0, 1))
        assert np.allclose(out, basis(2, 3))
        out2 = apply_gate(basis(2, 0), 2, GateKind.CNOT, (0, 1))
        assert np.allclose(out2, basis(2, 0))

    def test_rz_applies_phase_to_one_state(self):
        out = apply_gate(basis(1, 1), 1, GateKind.RZ, (0,), math.pi)
        assert out[1] == pytest.approx(-1.0)

    def test_missing_angle_raises(self):
        with pytest.raises(ValueError):
            apply_gate(basis(2, 0), 2, GateKind.CPHASE, (0, 1), None)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            apply_gate(basis(1, 0), 1, "foo", (0,))


class TestSimulateCircuit:
    def test_default_initial_state_is_all_zero(self):
        c = Circuit(2)
        out = simulate_circuit(c)
        assert np.allclose(out, basis(2, 0))

    def test_bell_state(self):
        c = Circuit(2).h(0).cnot(0, 1)
        out = simulate_circuit(c)
        expected = (basis(2, 0) + basis(2, 3)) / math.sqrt(2)
        assert np.allclose(out, expected)

    def test_norm_preserved(self):
        c = qft_circuit(4)
        out = simulate_circuit(c, random_state(4, seed=3))
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_wrong_state_dimension_raises(self):
        with pytest.raises(ValueError):
            simulate_circuit(Circuit(2), np.zeros(3))


class TestUnitaries:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_circuit_unitary_is_unitary(self, n):
        u = circuit_unitary(qft_circuit(n))
        assert np.allclose(u @ u.conj().T, np.eye(2 ** n), atol=1e-9)

    def test_qft_reference_matches_dft_definition(self):
        n = 3
        dft = qft_reference_unitary(n, bit_reversed_output=False)
        dim = 2 ** n
        omega = np.exp(2j * math.pi / dim)
        expected = np.array(
            [[omega ** (j * k) for k in range(dim)] for j in range(dim)]
        ) / math.sqrt(dim)
        assert np.allclose(dft, expected)

    def test_mapped_events_unitary_matches_circuit_unitary(self):
        c = qft_circuit(3)
        events = [(g.kind, g.qubits, g.angle) for g in c.gates]
        assert unitaries_equal_up_to_phase(
            mapped_events_unitary(3, events), circuit_unitary(c)
        )


class TestEquality:
    def test_states_equal_up_to_phase(self):
        s = random_state(3, seed=5)
        assert states_equal_up_to_phase(s, s * np.exp(0.7j))

    def test_states_differing_are_detected(self):
        s = random_state(3, seed=6)
        t = random_state(3, seed=7)
        assert not states_equal_up_to_phase(s, t)

    def test_states_scaled_by_non_unit_factor_rejected(self):
        s = random_state(2, seed=8)
        assert not states_equal_up_to_phase(s, 2.0 * s)

    def test_unitaries_equal_up_to_phase(self):
        u = circuit_unitary(qft_circuit(2))
        assert unitaries_equal_up_to_phase(u, u * np.exp(1j * 0.3))
        assert not unitaries_equal_up_to_phase(u, np.eye(4))

    def test_shape_mismatch(self):
        assert not states_equal_up_to_phase(np.zeros(2), np.zeros(4))
        assert not unitaries_equal_up_to_phase(np.eye(2), np.eye(4))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_random_state_is_normalised(self, seed):
        s = random_state(4, seed=seed)
        assert np.linalg.norm(s) == pytest.approx(1.0)
