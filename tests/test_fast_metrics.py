"""Equivalence of the vectorized metric extraction with the scalar reference.

``result_from_mapped`` (and therefore every pinned metric in the harness)
goes through :func:`repro.eval.metrics.fast_metrics`; these tests pin it to
the scalar :func:`repro.circuit.schedule.asap_depth` / counter methods over
real mapper outputs and adversarial synthetic streams (barriers, idle
qubits, heterogeneous latencies).
"""

import random

import pytest

from repro import GridTopology, LatticeSurgeryTopology, get_workload
from repro.arch import CaterpillarTopology, LNNTopology, SycamoreTopology, Topology
from repro.baselines import SabreMapper
from repro.circuit.gates import GateKind, Op
from repro.circuit.schedule import MappedCircuit, asap_depth
import repro
from repro.eval.metrics import fast_asap_depth, fast_metrics, mapped_op_arrays


def assert_fast_matches_reference(mapped: MappedCircuit):
    depth, unit_depth, swaps, cphases = fast_metrics(mapped)
    assert depth == mapped.depth()
    assert unit_depth == mapped.unit_depth()
    assert swaps == mapped.swap_count()
    assert cphases == mapped.cphase_count()


TOPOLOGIES = [
    LNNTopology(9),
    GridTopology(3, 3),
    SycamoreTopology(4),
    CaterpillarTopology.regular_groups(3),
    LatticeSurgeryTopology(4),  # heterogeneous (weighted) cost model
]


class TestRealMappedCircuits:
    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
    def test_ours_qft(self, topo):
        mapped = repro.compile(
            workload="qft", architecture=topo, approach="ours", verify=False
        ).mapped
        assert_fast_matches_reference(mapped)

    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
    def test_sabre_qft(self, topo):
        assert_fast_matches_reference(SabreMapper(topo, seed=3).map_qft())

    @pytest.mark.parametrize("name", ["qaoa", "random"])
    def test_lattice_weighted_depth_on_new_workloads(self, name):
        topo = LatticeSurgeryTopology(3)
        wl = get_workload(name)
        mapped = wl.map_with(SabreMapper(topo, seed=5), 9)
        assert_fast_matches_reference(mapped)


def _random_stream(seed: int, num_sites: int, n_ops: int, barriers: bool):
    rng = random.Random(seed)
    ops = []
    for _ in range(n_ops):
        r = rng.random()
        if barriers and r < 0.03:
            ops.append(Op(GateKind.BARRIER, (), ()))
        elif r < 0.4:
            q = rng.randrange(num_sites)
            ops.append(Op(GateKind.H, (q,), (-1,)))
        else:
            a, b = rng.sample(range(num_sites), 2)
            kind = rng.choice([GateKind.CPHASE, GateKind.SWAP, GateKind.CNOT])
            angle = 0.5 if kind == GateKind.CPHASE else None
            ops.append(Op(kind, (a, b), (-1, -1), angle))
    return ops


class TestSyntheticStreams:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("barriers", [False, True])
    def test_unit_latency_streams(self, seed, barriers):
        num_sites = 7
        ops = _random_stream(seed, num_sites, 300, barriers)
        kinds, q0, q1 = mapped_op_arrays(
            MappedCircuit(None, num_sites, list(range(num_sites)), ops)
        )
        import numpy as np

        lat = np.ones(len(kinds), dtype=np.int64)
        assert fast_asap_depth(kinds, q0, q1, lat, num_sites) == asap_depth(
            ops, lambda op: 1
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_weighted_latency_streams(self, seed):
        # arbitrary per-op integer latencies, including zero-latency ops
        num_sites = 6
        ops = _random_stream(seed, num_sites, 200, barriers=True)
        rng = random.Random(seed + 100)
        weights = [rng.randrange(0, 5) for _ in ops]
        lat_of = {id(op): w for op, w in zip(ops, weights)}
        kinds, q0, q1 = mapped_op_arrays(
            MappedCircuit(None, num_sites, list(range(num_sites)), ops)
        )
        import numpy as np

        lat = np.asarray(weights, dtype=np.int64)
        assert fast_asap_depth(kinds, q0, q1, lat, num_sites) == asap_depth(
            ops, lambda op: lat_of[id(op)]
        )

    def test_empty_stream(self):
        mapped = MappedCircuit(GridTopology(2, 2), 4, [0, 1, 2, 3], [])
        assert fast_metrics(mapped) == (0, 0, 0, 0)


class TestCustomCostModelFallback:
    def test_scalar_only_override_falls_back_to_reference(self):
        class OddTopology(Topology):
            def op_latency(self, op):
                return 3 if op.kind == GateKind.SWAP else 1

        topo = OddTopology(4, [(0, 1), (1, 2), (2, 3)], name="odd")
        assert topo.op_latency_array(*mapped_op_arrays(
            MappedCircuit(topo, 2, [0, 1], [])
        )) is None
        mapped = SabreMapper(topo, seed=1).map_qft(4)
        assert_fast_matches_reference(mapped)
