"""Tests for the heavy-hex dangling-point mapper (Section 4)."""

import pytest

from helpers import assert_valid_qft
from repro.arch import CaterpillarTopology, HeavyHexTopology
from repro.core import HeavyHexQFTMapper


class TestOnRegularCaterpillars:
    @pytest.mark.parametrize("groups", [1, 2, 3, 4, 6, 8])
    def test_produces_verified_qft(self, groups):
        topo = CaterpillarTopology.regular_groups(groups)
        mapped = HeavyHexQFTMapper(topo).map_qft()
        assert_valid_qft(mapped, topo.num_qubits)

    @pytest.mark.parametrize("groups", [2, 4, 8, 12, 16])
    def test_no_fallback_needed_on_paper_layouts(self, groups):
        topo = CaterpillarTopology.regular_groups(groups)
        mapped = HeavyHexQFTMapper(topo).map_qft()
        assert mapped.metadata["fallback_swaps"] == 0

    @pytest.mark.parametrize("groups", [2, 4, 8, 16, 20])
    def test_depth_is_linear_and_close_to_5n(self, groups):
        topo = CaterpillarTopology.regular_groups(groups)
        n = topo.num_qubits
        mapped = HeavyHexQFTMapper(topo).map_qft()
        # the paper proves 5N + O(1) for this layout and 6N + O(1) in general
        assert mapped.depth() <= 7 * n + 20
        assert mapped.depth() >= 3 * n

    @pytest.mark.parametrize("groups", [2, 4, 8])
    def test_every_dangling_position_gets_a_parked_qubit(self, groups):
        topo = CaterpillarTopology.regular_groups(groups)
        mapped = HeavyHexQFTMapper(topo).map_qft()
        assert mapped.metadata["parked"] == topo.num_dangling

    def test_parked_qubits_are_the_smallest_indices(self):
        topo = CaterpillarTopology.regular_groups(4)
        mapped = HeavyHexQFTMapper(topo).map_qft()
        final = mapped.final_layout()
        dangling_phys = set(topo.dangling_qubits())
        parked_logicals = {q for q, p in enumerate(final) if p in dangling_phys}
        assert parked_logicals == set(range(topo.num_dangling))

    def test_cphase_count_matches_kernel(self):
        topo = CaterpillarTopology.regular_groups(5)
        n = topo.num_qubits
        mapped = HeavyHexQFTMapper(topo).map_qft()
        assert mapped.cphase_count() == n * (n - 1) // 2

    def test_swap_tags_attribute_parking(self):
        topo = CaterpillarTopology.regular_groups(3)
        mapped = HeavyHexQFTMapper(topo).map_qft()
        tags = mapped.swaps_by_tag()
        assert tags.get("hh-park", 0) == topo.num_dangling


class TestIrregularCaterpillars:
    @pytest.mark.parametrize(
        "main_length,junctions",
        [
            (6, [0]),
            (8, [2, 5]),
            (9, [1, 2, 7]),
            (12, [0, 1, 2, 3]),
            (10, [9]),
        ],
    )
    def test_still_correct_even_if_fallback_is_needed(self, main_length, junctions):
        topo = CaterpillarTopology(main_length, junctions)
        mapped = HeavyHexQFTMapper(topo).map_qft()
        assert_valid_qft(mapped, topo.num_qubits, statevector_limit=6)

    def test_plain_line_degenerates_to_lnn(self):
        topo = CaterpillarTopology(8, [])
        mapped = HeavyHexQFTMapper(topo).map_qft()
        assert_valid_qft(mapped, 8)
        assert mapped.metadata["parked"] == 0


class TestOnRealHeavyHex:
    def test_unrolled_device_is_mapped_and_translated_back(self):
        hh = HeavyHexTopology(3, 7)
        mapped = HeavyHexQFTMapper(hh).map_qft()
        assert mapped.topology is hh
        assert mapped.num_logical == hh.num_qubits
        assert_valid_qft(mapped, hh.num_qubits)

    def test_all_ops_respect_the_device_coupling(self):
        hh = HeavyHexTopology(2, 7)
        mapped = HeavyHexQFTMapper(hh).map_qft()
        for op in mapped.ops:
            if op.is_two_qubit:
                assert hh.has_edge(*op.physical)

    def test_rejects_unknown_topology_type(self):
        from repro.arch import GridTopology

        with pytest.raises(TypeError):
            HeavyHexQFTMapper(GridTopology(3, 3))

    def test_too_many_logical_qubits(self):
        topo = CaterpillarTopology.regular_groups(2)
        with pytest.raises(ValueError):
            HeavyHexQFTMapper(topo).map_qft(topo.num_qubits + 1)
