"""Tests for the concrete architecture models (Section 2.2-2.3, 4-6)."""

import pytest

from repro.arch import (
    CaterpillarTopology,
    GridTopology,
    HeavyHexTopology,
    LatticeSurgeryTopology,
    LNNTopology,
    SycamoreTopology,
    TwoRowTopology,
)
from repro.circuit import GateKind, Op


class TestLNN:
    @pytest.mark.parametrize("n", [1, 2, 5, 17])
    def test_path_structure(self, n):
        t = LNNTopology(n)
        assert t.num_qubits == n
        assert t.num_edges() == n - 1
        assert t.line_order() == list(range(n))

    def test_degrees(self):
        t = LNNTopology(6)
        assert t.degree(0) == 1 and t.degree(5) == 1
        assert all(t.degree(q) == 2 for q in range(1, 5))


class TestGrid:
    def test_dimensions_and_edges(self):
        g = GridTopology(3, 4)
        assert g.num_qubits == 12
        # 3*3 horizontal + 2*4 vertical
        assert g.num_edges() == 3 * 3 + 2 * 4

    def test_index_coords_roundtrip(self):
        g = GridTopology(3, 4)
        for q in range(g.num_qubits):
            r, c = g.coords(q)
            assert g.index(r, c) == q

    def test_index_bounds(self):
        g = GridTopology(2, 2)
        with pytest.raises(ValueError):
            g.index(2, 0)

    def test_row_and_col_qubits(self):
        g = GridTopology(3, 3)
        assert g.row_qubits(1) == [3, 4, 5]
        assert g.col_qubits(2) == [2, 5, 8]

    def test_serpentine_is_hamiltonian_path(self):
        g = GridTopology(4, 5)
        order = g.serpentine_order()
        assert sorted(order) == list(range(g.num_qubits))
        for a, b in zip(order, order[1:]):
            assert g.has_edge(a, b)

    def test_two_row_topology(self):
        t = TwoRowTopology(6)
        assert t.rows == 2 and t.cols == 6
        assert t.num_qubits == 12


class TestSycamore:
    def test_requires_even_size(self):
        with pytest.raises(ValueError):
            SycamoreTopology(3)
        with pytest.raises(ValueError):
            SycamoreTopology(0)

    @pytest.mark.parametrize("m", [2, 4, 6])
    def test_qubit_count_and_degree_bound(self, m):
        t = SycamoreTopology(m)
        assert t.num_qubits == m * m
        assert max(t.degree(q) for q in range(t.num_qubits)) <= 4

    @pytest.mark.parametrize("m", [2, 4, 6])
    def test_unit_lines_are_coupled_paths(self, m):
        t = SycamoreTopology(m)
        assert t.num_units == m // 2
        assert t.unit_size == 2 * m
        for u in range(t.num_units):
            line = t.unit_line(u)
            assert len(line) == 2 * m
            assert len(set(line)) == 2 * m
            for a, b in zip(line, line[1:]):
                assert t.has_edge(a, b)

    def test_unit_of(self):
        t = SycamoreTopology(4)
        assert t.unit_of(t.index(0, 0)) == 0
        assert t.unit_of(t.index(3, 2)) == 1

    def test_inter_unit_links_exist(self):
        t = SycamoreTopology(4)
        links = t.inter_unit_links(0)
        assert links, "adjacent units must share links"
        for a, b in links:
            assert t.has_edge(a, b)

    def test_inter_unit_links_bounds(self):
        t = SycamoreTopology(4)
        with pytest.raises(ValueError):
            t.inter_unit_links(1)  # last unit has no next unit

    def test_unit_rows_bounds(self):
        with pytest.raises(ValueError):
            SycamoreTopology(4).unit_rows(5)


class TestCaterpillar:
    def test_regular_groups_shape(self):
        t = CaterpillarTopology.regular_groups(4)  # 20 qubits
        assert t.num_qubits == 20
        assert t.main_length == 16
        assert t.num_dangling == 4

    def test_dangling_attachment(self):
        t = CaterpillarTopology.regular_groups(2)
        for j, d in t.dangling_of.items():
            assert t.has_edge(j, d)
            assert t.degree(d) == 1
            assert t.is_dangling(d) and t.is_main(j)

    def test_serpentine_order_covers_everything_once(self):
        t = CaterpillarTopology.regular_groups(3)
        order = t.serpentine_order()
        assert sorted(order) == list(range(t.num_qubits))

    def test_serpentine_places_dangling_right_after_junction(self):
        t = CaterpillarTopology(4, [1])
        # main 0,1 then dangling (physical 4), then main 2,3
        assert t.serpentine_order() == [0, 1, 4, 2, 3]

    def test_junction_validation(self):
        with pytest.raises(ValueError):
            CaterpillarTopology(4, [5])
        with pytest.raises(ValueError):
            CaterpillarTopology(4, [2, 1])

    def test_regular_groups_validation(self):
        with pytest.raises(ValueError):
            CaterpillarTopology.regular_groups(0)
        with pytest.raises(ValueError):
            CaterpillarTopology.regular_groups(2, group_size=1)
        with pytest.raises(ValueError):
            CaterpillarTopology.regular_groups(2, dangling_offset=4)

    def test_no_hamiltonian_path_through_dangling(self):
        # dangling qubits have degree 1 and are not at the ends of the main
        # line, so a Hamiltonian path cannot exist once there are >= 2 of them
        t = CaterpillarTopology.regular_groups(3)
        degree_one = [q for q in range(t.num_qubits) if t.degree(q) == 1]
        assert len(degree_one) > 2


class TestHeavyHex:
    def test_row_and_bridge_counts(self):
        hh = HeavyHexTopology(3, 7)
        assert hh.num_rows == 3 and hh.row_length == 7
        # 2 boundaries x 2 bridges each for length 7 (cols {2,6} and {0,4})
        assert len(hh.bridges()) == 4
        assert hh.num_qubits == 3 * 7 + 4

    def test_bridges_connect_adjacent_rows(self):
        hh = HeavyHexTopology(3, 7)
        for r, c, phys in hh.bridges():
            assert hh.has_edge(hh.row_qubit(r, c), phys)
            assert hh.has_edge(phys, hh.row_qubit(r + 1, c))

    def test_unroll_produces_caterpillar_subgraph(self):
        hh = HeavyHexTopology(3, 7)
        cat, phys_map = hh.to_caterpillar()
        assert cat.num_qubits == hh.num_qubits
        assert len(phys_map) == hh.num_qubits
        assert sorted(phys_map) == list(range(hh.num_qubits))
        # every caterpillar edge must exist in the original device
        for a, b in cat.edge_list():
            assert hh.has_edge(phys_map[a], phys_map[b])

    def test_unroll_rejects_incompatible_row_length(self):
        hh = HeavyHexTopology(3, 9)  # 9 % 4 != 3: end bridges missing
        with pytest.raises(ValueError):
            hh.to_caterpillar()

    def test_unrolled_dangling_count(self):
        hh = HeavyHexTopology(3, 7)
        cat, _ = hh.to_caterpillar()
        # one bridge per boundary is consumed by the turn, the rest dangle
        assert cat.num_dangling == len(hh.bridges()) - (hh.num_rows - 1)


class TestLatticeSurgery:
    def test_shape(self):
        t = LatticeSurgeryTopology(4)
        assert t.num_qubits == 16
        assert t.rows == t.cols == 4
        assert t.num_units == 4 and t.unit_size == 4

    def test_fast_vs_slow_links(self):
        t = LatticeSurgeryTopology(3)
        assert t.is_fast_link(0, 1)        # horizontal
        assert not t.is_fast_link(0, 3)    # vertical
        with pytest.raises(ValueError):
            t.is_fast_link(0, 4)           # not a link at all

    def test_latencies(self):
        t = LatticeSurgeryTopology(3)
        assert t.swap_latency(0, 1) == t.FAST_SWAP_LATENCY == 2
        assert t.swap_latency(0, 3) == t.SLOW_SWAP_LATENCY == 6
        assert t.cphase_latency(0, 1) == t.CNOT_LATENCY == 2
        assert t.cphase_latency(0, 3) == 2
        assert t.op_latency(Op(GateKind.H, (0,), (0,))) == 1
        assert t.op_latency(Op(GateKind.BARRIER, (), ())) == 0

    def test_unit_lines_use_fast_links(self):
        t = LatticeSurgeryTopology(4)
        for u in range(t.num_units):
            line = t.unit_line(u)
            for a, b in zip(line, line[1:]):
                assert t.is_fast_link(a, b)

    def test_serpentine_is_hamiltonian(self):
        t = LatticeSurgeryTopology(5)
        order = t.serpentine_order()
        assert sorted(order) == list(range(t.num_qubits))
        for a, b in zip(order, order[1:]):
            assert t.has_edge(a, b)

    def test_rectangular_variant(self):
        t = LatticeSurgeryTopology(4, rows=3)
        assert t.rows == 3 and t.cols == 4
