"""The ``transaction-discipline`` checker against its fixture pair.

``bad_snippets.py`` holds one violation per rule: a BEGIN that falls
off the end, one that returns with the transaction open, one whose only
handler is too narrow to guard the raising path, a helper class whose
``__exit__`` forgets the rollback arm, and a bare autocommit INSERT.
``good_snippets.py`` shows the disciplined versions the real store
uses: a structural helper class, a provider method, writes through a
parameter whose every call site is transaction-scoped, and an explicit
BEGIN/COMMIT/ROLLBACK guard.
"""


def _lint(lint_fixture, name):
    return lint_fixture(
        f"transactions/{name}", only=["transaction-discipline"]
    )


def test_bad_fixture_flags_every_marked_line(lint_fixture, marked_lines):
    findings = _lint(lint_fixture, "bad_snippets.py")
    # a single unclosed BEGIN yields two findings (normal + raising path),
    # so compare the distinct line sets
    assert sorted({f.line for f in findings}) == marked_lines(
        "transactions/bad_snippets.py"
    )
    assert all(f.checker == "transaction-discipline" for f in findings)


def test_each_rule_fires(lint_fixture):
    findings = _lint(lint_fixture, "bad_snippets.py")
    blob = "\n".join(f.message for f in findings)
    assert "BEGIN falls off the end without commit() or rollback()" in blob
    assert "BEGIN returns without commit() or rollback()" in blob
    assert blob.count("no finally/except closes this BEGIN") == 3
    assert "BrokenTx.__exit__() never calls rollback()" in blob
    assert "INSERT on conn outside any transaction helper" in blob


def test_good_fixture_is_clean(lint_fixture):
    assert _lint(lint_fixture, "good_snippets.py") == []
