"""Whole-program guarantees: the tree self-lints clean under all seven
checkers, and seeded mutations of the *real* source are caught by the
matching checker (the lint-layer analogue of the chaos suite's crash
drills -- proves the checkers defend the invariants they claim to).
"""

import shutil

import pytest

from repro.lint import run_lint

SEVEN_CHECKERS = (
    "determinism", "cache-purity", "registry-hygiene", "error-discipline",
    "concurrency", "transaction-discipline", "sql-schema",
)


def test_self_lint_clean_with_all_seven_checkers(repo_root):
    """src/repro is clean -- no baseline, no grandfathering."""

    findings = run_lint(
        [repo_root / "src" / "repro"],
        root=repo_root,
        only=list(SEVEN_CHECKERS),
    )
    assert [f.render() for f in findings] == []


# ---------------------------------------------------------------- drills
@pytest.fixture()
def mirror(repo_root, tmp_path):
    """Copy real store/eval modules into a scratch project tree."""

    def _mirror(*rels):
        for rel in rels:
            dst = tmp_path / rel
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(repo_root / rel, dst)
        return tmp_path

    return _mirror


def _lint(root, rel, checker):
    return run_lint([root / rel], root=root, only=[checker])


def test_drill_dropped_rollback_is_caught(mirror):
    root = mirror("src/repro/store/schema.py")
    rel = "src/repro/store/schema.py"
    assert _lint(root, rel, "transaction-discipline") == []  # control
    path = root / rel
    source = path.read_text()
    mutated = source.replace('conn.execute("ROLLBACK")', "pass")
    assert mutated != source
    path.write_text(mutated)
    findings = _lint(root, rel, "transaction-discipline")
    assert any(
        "no finally/except closes this BEGIN" in f.message for f in findings
    )


def test_drill_renamed_schema_column_is_caught(mirror):
    root = mirror("src/repro/store/schema.py", "src/repro/store/store.py")
    rel = "src/repro/store/store.py"
    assert _lint(root, rel, "sql-schema") == []  # control
    schema = root / "src/repro/store/schema.py"
    source = schema.read_text()
    mutated = source.replace("cell_key", "cell_key_renamed")
    assert mutated != source
    schema.write_text(mutated)
    findings = _lint(root, rel, "sql-schema")
    assert any("cell_key" in f.message for f in findings)


def test_drill_hoisted_connection_is_caught(mirror):
    root = mirror("src/repro/eval/executors.py")
    rel = "src/repro/eval/executors.py"
    assert _lint(root, rel, "concurrency") == []  # control
    path = root / rel
    path.write_text(
        path.read_text()
        + "\n\nimport sqlite3\n"
        + '_HOISTED_CONN = sqlite3.connect("cells.db")\n\n\n'
        + "def _hoisted_worker(spec):\n"
        + '    return _HOISTED_CONN.execute("SELECT 1")\n\n\n'
        + "def _hoisted_submit(pool, specs):\n"
        + "    return [pool.submit(_hoisted_worker, s) for s in specs]\n"
    )
    findings = _lint(root, rel, "concurrency")
    assert any(
        "module-scope sqlite connection '_HOISTED_CONN'" in f.message
        for f in findings
    )
