"""Framework behavior: suppression, parse errors, the checker registry,
and the ``python -m repro.lint`` CLI contract (exit codes, baseline
handling, ``--list``)."""

import pytest

from repro.lint import CHECKERS, Finding, run_lint
from repro.lint.__main__ import main
from repro.registry import UnknownNameError

ALL_CHECKERS = (
    "determinism", "cache-purity", "registry-hygiene", "error-discipline",
    "concurrency", "transaction-discipline", "sql-schema",
)


# ---------------------------------------------------------------- registry
def test_all_seven_checkers_registered():
    assert set(ALL_CHECKERS) <= set(CHECKERS.names())


def test_synonyms_resolve():
    assert CHECKERS.canonical("det") == "determinism"
    assert CHECKERS.canonical("no-fork") == "cache-purity"
    assert CHECKERS.canonical("hygiene") == "registry-hygiene"
    assert CHECKERS.canonical("errors") == "error-discipline"
    assert CHECKERS.canonical("fork-safety") == "concurrency"
    assert CHECKERS.canonical("tx") == "transaction-discipline"
    assert CHECKERS.canonical("schema-drift") == "sql-schema"


def test_unknown_checker_raises_with_suggestion(tmp_path):
    src = tmp_path / "mod.py"
    src.write_text("x = 1\n")
    with pytest.raises(UnknownNameError):
        run_lint([src], root=tmp_path, only=["determinsim"])


# ------------------------------------------------------------- suppression
def _listdir_module(tmp_path, body):
    src = tmp_path / "mod.py"
    src.write_text("import os\n\n\n" + body)
    return src


def test_suppression_silences_the_named_checker(tmp_path):
    src = _listdir_module(
        tmp_path,
        "def f(d):\n"
        "    return os.listdir(d)  # repro-lint: ignore[determinism]\n",
    )
    assert run_lint([src], root=tmp_path, only=["determinism"]) == []


def test_bare_ignore_silences_every_checker(tmp_path):
    src = _listdir_module(
        tmp_path,
        "def f(d):\n"
        "    return os.listdir(d)  # repro-lint: ignore\n",
    )
    assert run_lint([src], root=tmp_path) == []


def test_suppression_is_checker_specific(tmp_path):
    src = _listdir_module(
        tmp_path,
        "def f(d):\n"
        "    return os.listdir(d)  # repro-lint: ignore[error-discipline]\n",
    )
    findings = run_lint([src], root=tmp_path, only=["determinism"])
    assert [f.checker for f in findings] == ["determinism"]


def test_marker_inside_a_string_does_not_suppress(tmp_path):
    """Suppressions are parsed from COMMENT tokens; the marker appearing
    in a string literal on the flagged line must not silence anything."""

    src = _listdir_module(
        tmp_path,
        "def f(d):\n"
        '    return os.listdir(d) or "# repro-lint: ignore"\n',
    )
    findings = run_lint([src], root=tmp_path, only=["determinism"])
    assert len(findings) == 1


# ------------------------------------------------------------ parse errors
def test_unparseable_file_is_a_parse_finding(tmp_path):
    src = tmp_path / "broken.py"
    src.write_text("def f(:\n")
    findings = run_lint([src], root=tmp_path)
    assert [f.checker for f in findings] == ["parse"]
    assert findings[0].path == "broken.py"


# ---------------------------------------------------------------- findings
def test_finding_render_and_baseline_key():
    f = Finding(path="src/x.py", line=7, checker="determinism", message="m")
    assert f.render() == "src/x.py:7:determinism:m"
    # baseline identity is line-insensitive on purpose
    assert f.baseline_key == "src/x.py:determinism:m"


# --------------------------------------------------------------------- CLI
@pytest.fixture
def violation_project(tmp_path):
    """A rooted mini-project with exactly one determinism violation."""

    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    src = tmp_path / "src" / "mod.py"
    src.parent.mkdir(parents=True)
    src.write_text("import os\n\n\ndef f(d):\n    return os.listdir(d)\n")
    return tmp_path


def test_cli_exits_1_and_renders_findings(violation_project, capsys):
    rc = main([str(violation_project / "src")])
    out = capsys.readouterr()
    assert rc == 1
    assert "src/mod.py:5:determinism:" in out.out
    assert "1 finding(s)" in out.err


def test_cli_fix_hints(violation_project, capsys):
    rc = main([str(violation_project / "src"), "--fix-hints"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "hint: wrap the call in sorted(...)" in out


def test_cli_baseline_roundtrip(violation_project, capsys):
    baseline = violation_project / "LINT_BASELINE.txt"
    src = str(violation_project / "src")

    # bootstrap: --write-baseline grandfathers the current findings
    assert main([src, "--baseline", str(baseline), "--write-baseline"]) == 0
    assert "src/mod.py:determinism:" in baseline.read_text()

    # with the baseline in place the same tree passes
    assert main([src, "--baseline", str(baseline)]) == 0

    # fixing the violation makes the baseline entry STALE -> exit 1
    mod = violation_project / "src" / "mod.py"
    mod.write_text(mod.read_text().replace(
        "os.listdir(d)", "sorted(os.listdir(d))"
    ))
    rc = main([src, "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "stale baseline entry" in out

    # deleting the stale line restores a clean exit (shrink-only ratchet)
    baseline.write_text(
        "\n".join(
            line
            for line in baseline.read_text().splitlines()
            if "src/mod.py" not in line
        )
    )
    assert main([src, "--baseline", str(baseline)]) == 0


def test_cli_checker_filter(violation_project, capsys):
    rc = main([str(violation_project / "src"), "--checker", "errors"])
    capsys.readouterr()
    assert rc == 0  # the only violation is a determinism one


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in ALL_CHECKERS:
        assert name in out
