"""The ``determinism`` checker against its fixture pair.

Contract: every ``# FINDING`` line in ``bad_snippets.py`` produces exactly
one finding on that line, and ``good_snippets.py`` (the sanctioned
counterparts, including a per-line suppression) is completely clean.
"""

BAD = "determinism/bad_snippets.py"
GOOD = "determinism/good_snippets.py"


def test_bad_fixture_flags_every_marked_line(lint_fixture, marked_lines):
    findings = lint_fixture(BAD, only=["determinism"])
    assert [f.line for f in findings] == marked_lines(BAD)
    assert all(f.checker == "determinism" for f in findings)
    assert all(f.path == "bad_snippets.py" for f in findings)


def test_good_fixture_is_clean(lint_fixture):
    assert lint_fixture(GOOD, only=["determinism"]) == []


def test_messages_name_the_failure_mode(lint_fixture):
    findings = lint_fixture(BAD, only=["determinism"])
    blob = "\n".join(f.message for f in findings)
    assert "PYTHONHASHSEED" in blob  # set-iteration rule
    assert "global RNG" in blob  # unseeded random.* rule
    assert "directory listing" in blob  # listdir/glob rule
    assert "wall-clock" in blob  # clock-flow rule


def test_set_iteration_needs_an_ordered_sink(tmp_path, repo_root):
    """Membership tests and commutative folds over sets stay unflagged;
    the same iteration feeding .append() is flagged."""

    from repro.lint import run_lint

    src = tmp_path / "snippet.py"
    src.write_text(
        "def fold(values):\n"
        "    total = 0\n"
        "    for v in set(values):\n"
        "        total += v\n"
        "    return total\n"
        "\n"
        "def ordered(values):\n"
        "    out = []\n"
        "    for v in set(values):\n"
        "        out.append(v)\n"
        "    return out\n"
    )
    findings = run_lint([src], root=tmp_path, only=["determinism"])
    assert [f.line for f in findings] == [9]


def test_synonyms_resolve_to_determinism(lint_fixture, marked_lines):
    for spelling in ("det", "ordering"):
        findings = lint_fixture(BAD, only=[spelling])
        assert [f.line for f in findings] == marked_lines(BAD)
