"""The ``sql-schema`` checker against its mini-project fixtures.

``fixtures/sql/`` mirrors the real layout: ``src/repro/store/schema.py``
declares ``_DDL`` and the snippets execute SQL against it.  The bad
file drifts in every checked way (typo'd table, unknown bare and
alias-qualified columns, INSERT column/VALUES arity, placeholder/params
arity, a typo in ``sql +=`` assembly); the good file uses the dynamic
shapes the real store relies on (f-string holes, conditional WHERE
assembly, upsert with ``excluded.``, subquery, implicit rowid) and must
come back clean.
"""


def test_bad_fixture_flags_every_marked_line(lint_sql_fixture, marked_lines):
    findings = lint_sql_fixture("bad_snippets.py")
    assert [f.line for f in findings] == marked_lines(
        "sql/src/repro/store/bad_snippets.py"
    )
    assert all(f.checker == "sql-schema" for f in findings)


def test_each_rule_fires(lint_sql_fixture):
    findings = lint_sql_fixture("bad_snippets.py")
    blob = "\n".join(f.message for f in findings)
    assert "unknown table 'cels'" in blob
    assert "unknown column 'cell_hash'" in blob
    assert "unknown column c.value" in blob
    assert "unknown column 'val' in INSERT INTO meta" in blob
    assert "lists 2 column(s) but VALUES has 3 item(s)" in blob
    assert "2 placeholder(s) but the call passes 1 parameter(s)" in blob
    assert "unknown column 'created_of'" in blob


def test_good_fixture_is_clean(lint_sql_fixture):
    assert lint_sql_fixture("good_snippets.py") == []


def test_silent_without_a_schema_module(lint_fixture):
    """Outside a project that declares store/schema.py the checker stays
    quiet (mirrors cache-purity's behavior without approaches.py)."""

    findings = lint_fixture(
        "transactions/bad_snippets.py", only=["sql-schema"]
    )
    assert findings == []
