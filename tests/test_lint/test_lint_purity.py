"""The ``cache-purity`` checker against its mini-project fixtures.

``fixtures/purity/`` is a self-contained project whose
``src/repro/approaches.py`` defines ``ENGINE_KWARGS = frozenset({"kernel"})``
-- the checker reads that literal from the AST, exactly as it does in the
real tree.  ``bad_snippets.py`` exercises every rule: an unguarded known
sink, an autodetected hashlib sink, a direct engine-literal injection, a
transitive injection through a forwarding wrapper (the call-graph walk),
and a second ENGINE_KWARGS definition.
"""

from repro.lint import run_lint


def test_bad_fixture_flags_every_marked_line(
    lint_purity_fixture, marked_lines
):
    findings = lint_purity_fixture("bad_snippets.py")
    assert [f.line for f in findings] == marked_lines(
        "purity/src/repro/bad_snippets.py"
    )
    assert all(f.checker == "cache-purity" for f in findings)
    assert all(f.path == "src/repro/bad_snippets.py" for f in findings)


def test_good_fixture_is_clean(lint_purity_fixture):
    assert lint_purity_fixture("good_snippets.py") == []


def test_each_rule_fires(lint_purity_fixture):
    findings = lint_purity_fixture("bad_snippets.py")
    blob = "\n".join(f.message for f in findings)
    # unguarded known sinks (ResultCache.key, the store's identity_columns)
    # + autodetected hashlib sink
    assert "identity sink ResultCache.key()" in blob
    assert "identity sink identity_columns()" in blob
    assert "identity sink hash_options()" in blob
    # engine literal caught at the call site: direct into the cache sink,
    # through a forwarding wrapper, and direct into the store sink
    assert blob.count("engine kwarg ['kernel']") == 3
    # single-source-of-truth rule
    assert "redefined outside approaches.py" in blob


def test_transitive_injection_flagged_at_originating_call(
    lint_purity_fixture, fixtures_dir
):
    """The taint walk must attribute the finding to the call that
    introduced the literal: the wrapper becomes a *derived* sink and the
    caller passing "kernel" into it is what gets flagged."""

    findings = lint_purity_fixture("bad_snippets.py")
    source = (
        fixtures_dir / "purity" / "src" / "repro" / "bad_snippets.py"
    ).read_text().splitlines()
    transitive = [
        f for f in findings
        if "identity sink forwarding_wrapper()" in f.message
    ]
    assert len(transitive) == 1
    assert "forwarding_wrapper(" in source[transitive[0].line - 1]


def test_checker_is_silent_outside_a_repro_tree(tmp_path):
    """No src/repro/approaches.py means nothing to enforce (the purity
    rule is about THIS repo's engine-kwarg list, not arbitrary code)."""

    src = tmp_path / "mod.py"
    src.write_text(
        "import hashlib\n"
        "def hash_options(options):\n"
        "    return hashlib.sha256(repr(options).encode()).hexdigest()\n"
    )
    assert run_lint([src], root=tmp_path, only=["cache-purity"]) == []


def test_real_sinks_pass_by_guard_not_by_accident(repo_root):
    """Lint only the four real sink modules: the engine-kwarg filter in
    each must satisfy the checker (0 findings), proving the production
    guards are the thing keeping the tree clean."""

    findings = run_lint(
        [
            repo_root / "src" / "repro" / "eval" / "cache.py",
            repo_root / "src" / "repro" / "eval" / "journal.py",
            repo_root / "src" / "repro" / "eval" / "runners.py",
            repo_root / "src" / "repro" / "store" / "store.py",
        ],
        root=repo_root,
        only=["cache-purity"],
    )
    assert findings == []
