"""The ``deprecated-api`` checker against its fixture pair.

PR 10 retired ``compile_qft``/``run_cells``/``experiment_*``/``run_all``
to warning shims; this checker keeps new callers out statically.  The
shim-home exemption (the modules that define or re-export the shims may
mention the names) is exercised against a synthetic mini-project.
"""

from repro.lint import run_lint
from repro.lint.deprecated import DEPRECATED_NAMES

BAD = "deprecated/bad_snippets.py"
GOOD = "deprecated/good_snippets.py"


def test_bad_fixture_flags_every_marked_line(lint_fixture, marked_lines):
    findings = lint_fixture(BAD, only=["deprecated-api"])
    assert [f.line for f in findings] == marked_lines(BAD)
    assert all(f.checker == "deprecated-api" for f in findings)


def test_good_fixture_is_clean(lint_fixture):
    assert lint_fixture(GOOD, only=["deprecated-api"]) == []


def test_messages_name_the_replacement(lint_fixture):
    findings = lint_fixture(BAD, only=["deprecated-api"])
    blob = "\n".join(f.message for f in findings)
    assert "repro.compile" in blob  # compile_qft's replacement
    assert "run_specs" in blob  # run_cells' replacement
    assert 'execute(plan("table1"' in blob  # experiment_table1's


def test_every_retired_name_has_a_replacement_hint():
    for name, replacement in DEPRECATED_NAMES.items():
        assert replacement, name
        assert name not in replacement  # the hint points elsewhere


def test_shim_homes_are_exempt(tmp_path):
    home = tmp_path / "src" / "repro" / "eval" / "parallel.py"
    home.parent.mkdir(parents=True)
    home.write_text(
        "def run_cells(specs):\n"
        '    """The shim itself may name itself."""\n'
        "    return run_cells\n"
    )
    caller = tmp_path / "src" / "repro" / "eval" / "fresh.py"
    caller.write_text(
        "from .parallel import run_cells\n"
        "def sweep(specs):\n"
        "    return run_cells(specs)\n"
    )
    findings = run_lint(
        [home, caller], root=tmp_path, only=["deprecated-api"]
    )
    assert {f.path for f in findings} == {"src/repro/eval/fresh.py"}
    assert len(findings) == 2  # the import and the call, not the shim home
