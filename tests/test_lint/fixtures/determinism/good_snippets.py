"""Determinism fixtures that MUST all pass clean.

Each function is the sanctioned counterpart of a ``bad_snippets.py``
pattern: sorted iteration, order-insensitive consumption, seeded RNG
instances, wall-clock confined to timing bookkeeping.
"""

import glob
import os
import random
import time


def sorted_set_iteration(tags):
    out = []
    for t in sorted(set(tags)):
        out.append(t)
    return out


def set_membership(tags, probe):
    seen = set(tags)
    return probe in seen


def set_commutative_fold(values):
    total = 0
    for v in set(values):
        total += v  # commutative: order cannot be observed
    return total


def set_comprehension_stays_set(tags):
    return {t.strip() for t in set(tags)}


def sorted_comprehension(tags):
    return sorted(t for t in set(tags))


def numeric_literal_set():
    out = []
    for k in {1, 2, 3}:  # int hashes are unsalted: stable order
        out.append(k)
    return out


def sorted_listdir(d):
    return sorted(os.listdir(d))


def sorted_glob(d):
    return sorted(glob.glob(d + "/*.json"))


def counted_glob(root):
    return sum(1 for _ in root.glob("*.json"))


def listdir_len(d):
    return len(os.listdir(d))


def listdir_membership(d, name):
    return name in os.listdir(d)


def seeded_rng(seed):
    rng = random.Random(seed)
    return rng.random()


def timing_bookkeeping():
    start = time.perf_counter()
    wall_s = time.perf_counter() - start
    return {"wall_s": wall_s}


def deadline_check(deadline):
    return time.monotonic() > deadline


def suppressed_listing(d):
    return os.listdir(d)  # repro-lint: ignore[determinism]
