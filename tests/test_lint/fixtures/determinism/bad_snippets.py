"""Determinism fixtures that MUST each produce a finding.

Every function below exhibits one pattern the determinism checker exists
to catch; ``test_determinism.py`` asserts one finding per marked line.
The file is never imported -- it is linted as data.
"""

import glob
import os
import random
import time


def set_iteration_append(tags):
    out = []
    for t in set(tags):  # FINDING: set iteration feeds .append
        out.append(t)
    return out


def set_iteration_yield(tags):
    pending = set(tags)
    for t in pending:  # FINDING: set-typed name iterated into yield
        yield t


def set_comprehension_list(tags):
    return [t for t in set(tags)]  # FINDING: list built from set order


def set_comprehension_dict(tags):
    return {t: 0 for t in set(tags)}  # FINDING: dict inherits set order


def set_union_iteration(a, b):
    out = []
    for x in set(a) | set(b):  # FINDING: set operator result iterated
        out.append(x)
    return out


def string_set_literal():
    out = []
    for name in {"alpha", "beta"}:  # FINDING: string hashes are salted
        out.append(name)
    return out


def listdir_return(d):
    return os.listdir(d)  # FINDING: fs order escapes


def glob_comprehension(d):
    return [p for p in glob.glob(d + "/*.json")]  # FINDING


def path_glob_loop(root):
    out = []
    for p in root.glob("*.json"):  # FINDING: Path.glob unsorted
        out.append(p)
    return out


def global_random_choice(xs):
    return random.choice(xs)  # FINDING: hidden global RNG


def global_random_shuffle(xs):
    random.shuffle(xs)  # FINDING: hidden global RNG


def global_random_seed():
    random.seed(0)  # FINDING: seeding the global is still global state


def unseeded_instance():
    return random.Random()  # FINDING: no seed argument


def clock_as_seed():
    return random.Random(time.time())  # FINDING: wall clock used as seed


def clock_into_payload():
    return {"run_id": time.time_ns()}  # FINDING: clock into non-timing key
