"""Error-discipline fixtures that MUST all pass clean."""


def narrow_catch(fn):
    try:
        return fn()
    except (OSError, ValueError):
        return None


def broad_catch_with_handling(fn, log):
    try:
        return fn()
    except Exception as exc:
        log.warning("fn failed: %r", exc)
        return None


def broad_catch_reraise(fn, cleanup):
    try:
        return fn()
    except BaseException:
        cleanup()
        raise


def typed_raise(x):
    if x <= 0:
        raise ValueError(f"x must be positive, got {x}")
    return x


def suppressed_swallow(fn):
    try:
        return fn()
    except Exception:  # repro-lint: ignore[error-discipline]
        pass
