"""Error-discipline fixtures that MUST each produce a finding."""


def bare_except(fn):
    try:
        return fn()
    except:  # FINDING: bare except
        return None


def swallowed_exception(fn):
    try:
        return fn()
    except Exception:  # FINDING: broad catch, empty body
        pass


def swallowed_base_exception(fn):
    try:
        return fn()
    except BaseException:  # FINDING: even broader, still silent
        ...


def swallowed_in_tuple(fn):
    try:
        return fn()
    except (ValueError, Exception):  # FINDING: Exception hides in a tuple
        pass


def swallow_with_continue(items, fn):
    out = []
    for item in items:
        try:
            out.append(fn(item))
        except Exception:  # FINDING: continue-only body swallows too
            continue
    return out


def assert_control_flow(x):
    assert x > 0  # FINDING: stripped under python -O
    return x
