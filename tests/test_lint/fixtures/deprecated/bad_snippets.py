"""Deliberate deprecated-api violations; every marked line must be flagged.

Mentions of retired names in docstrings and comments are fine -- only
imports and live uses count: compile_qft, run_cells, run_all.
"""

from repro.core import compile_qft  # FINDING: import of a retired shim
from repro.eval import run_all  # FINDING: import of a retired shim

import repro.eval.parallel


def uses_the_qft_shim(topology):
    return compile_qft(topology)  # FINDING: call of a retired shim


def uses_run_cells_via_attribute(specs):
    return repro.eval.parallel.run_cells(specs)  # FINDING: attribute use


def sweeps_everything():
    return run_all()  # FINDING: call of a retired shim


def rebinds_a_shim():
    alias = compile_qft  # FINDING: bare-name use counts too
    return alias


def calls_experiment_family(profile):
    from repro.eval import experiment_table1  # FINDING: retired experiment

    return experiment_table1(profile)  # FINDING: call of a retired shim
