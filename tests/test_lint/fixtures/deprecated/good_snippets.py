"""Ported call sites: the supported surface only; must lint clean.

The docstring may say compile_qft or run_cells without tripping anything;
only imports and live uses are flagged.
"""

import repro
from repro.eval.executors import run_specs
from repro.eval.runs import execute, plan


def compiles_via_the_entry_point(topology):
    return repro.compile(
        workload="qft", architecture=topology, approach="ours"
    ).mapped


def runs_specs_directly(specs):
    return run_specs(specs, jobs=2)


def runs_a_planned_experiment(profile):
    return execute(plan("fig27", profile)).results


def defines_an_unrelated_run_all_local():
    # a *binding* named like a shim is not a use of the shim
    run_all = 3  # noqa: F841 -- store, never load
    return None


def suppressed_contract_use(topology):
    from repro.core import compile_qft  # repro-lint: ignore[deprecated-api]

    return compile_qft  # repro-lint: ignore[deprecated-api]
