"""Violations of every concurrency rule (linted as data, never imported)."""

import multiprocessing as mp
import random
import signal
import sqlite3
from concurrent.futures import ProcessPoolExecutor

RNG = random.Random(1234)  # FINDING: module-scope RNG used by the worker
DB = sqlite3.connect("cells.db")  # FINDING: module-scope connection crosses fork


def worker(spec):
    DB.execute("SELECT 1")
    return RNG.random(), spec


def run_all(specs):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(worker, specs))


def child(conn, url):
    return conn, url


def spawn(url):
    conn = sqlite3.connect(url)
    proc = mp.Process(target=child, args=(conn, url))  # FINDING: conn passed across fork
    proc.start()
    return proc


def _on_alarm(signum, frame):
    audit_timeout()
    raise TimeoutError()


def audit_timeout():
    print("cell timed out")  # FINDING: not async-signal-safe


def arm(seconds):
    signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(seconds)
