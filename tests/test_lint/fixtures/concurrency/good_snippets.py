"""The same shapes done right: per-worker resources, a lean handler."""

import multiprocessing as mp
import random
import signal
import sqlite3
from concurrent.futures import ProcessPoolExecutor

_timed_out = False  # plain flag: fine at module scope


def worker(spec):
    # each worker opens its own connection and seeds its own RNG
    conn = sqlite3.connect("cells.db")
    rng = random.Random(spec)
    try:
        return rng.random(), conn.execute("SELECT 1").fetchone()
    finally:
        conn.close()


def run_all(specs):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(worker, specs))


def spawn(url):
    # only picklable plain data crosses the fork
    proc = mp.Process(target=worker, args=(url,))
    proc.start()
    return proc


def _on_alarm(signum, frame):
    global _timed_out
    _timed_out = True
    raise TimeoutError()


def arm(seconds):
    signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(seconds)
