"""Violations of every transaction-discipline rule (linted as data)."""

import sqlite3


def open_store(path):
    return sqlite3.connect(path)


def leak_on_fallthrough(conn):
    conn.execute("BEGIN IMMEDIATE")  # FINDING x2: never closed, no guard
    conn.execute("SELECT 1")


def leak_on_return(conn):
    conn.execute("BEGIN IMMEDIATE")  # FINDING x2: returns open, no guard
    return conn.execute("SELECT 1").fetchone()


def narrow_guard(conn):
    conn.execute("BEGIN IMMEDIATE")  # FINDING: KeyError handler is not broad
    try:
        conn.execute("INSERT INTO t (a) VALUES (1)")
        conn.execute("COMMIT")
    except KeyError:
        conn.execute("ROLLBACK")
        raise


class BrokenTx:
    def __init__(self, conn):
        self._conn = conn

    def __enter__(self):
        self._conn.execute("BEGIN IMMEDIATE")  # FINDING: __exit__ lacks rollback
        return self._conn

    def __exit__(self, exc_type, exc, tb):
        self._conn.execute("COMMIT")
        return False


def stamp_meta(conn, value):
    conn.execute("INSERT INTO meta (key, value) VALUES ('x', ?)", (value,))  # FINDING: autocommit write
