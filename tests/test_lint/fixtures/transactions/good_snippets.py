"""Disciplined transactions: helper class, provider, guarded BEGIN."""

import sqlite3


class Tx:
    """Recognized structurally: __enter__ BEGINs, __exit__ closes both arms."""

    def __init__(self, conn):
        self._conn = conn

    def __enter__(self):
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self._conn.execute("COMMIT")
        else:
            self._conn.execute("ROLLBACK")
        return False


class Store:
    def __init__(self, path):
        self._conn = sqlite3.connect(path)

    def _tx(self):
        return Tx(self._conn)

    def put(self, key, value):
        with self._tx() as conn:
            conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)", (key, value)
            )

    def put_many(self, cell_id, rows):
        with self._tx() as conn:
            self._refresh(conn, cell_id, rows)

    def _refresh(self, conn, cell_id, rows):
        # writes on a parameter: every call site passes a tx-scoped conn
        conn.execute("DELETE FROM metrics WHERE cell_id = ?", (cell_id,))
        conn.executemany(
            "INSERT INTO metrics (cell_id, name, value) VALUES (?, ?, ?)",
            rows,
        )


def explicit_guard(conn):
    conn.execute("BEGIN IMMEDIATE")
    try:
        conn.execute("UPDATE meta SET value = '2' WHERE key = 'v'")
        conn.execute("COMMIT")
    except BaseException:
        conn.execute("ROLLBACK")
        raise
