"""SQL in agreement with schema.py, including the dynamic shapes the
real store uses (f-string holes, ``sql +=`` assembly, subqueries,
upserts) -- all must come back clean."""

import sqlite3


def open_store(path):
    return sqlite3.connect(path)


def get_version(conn):
    return conn.execute(
        "SELECT value FROM meta WHERE key = 'schema_version'"
    ).fetchone()


def put_cell(conn, cols, marks, row):
    # dynamic column list: holes make the statement unverifiable -> skipped
    conn.execute(f"INSERT INTO cells ({cols}) VALUES ({marks})", row)


def query(conn, clauses, limit):
    sql = "SELECT cell_key, status FROM cells"
    if clauses:
        sql += " WHERE " + " AND ".join(clauses)
    sql += " ORDER BY cell_key, id"
    if limit:
        sql += " LIMIT ?"
    return conn.execute(sql).fetchall()


def upsert(conn, key, value):
    conn.execute(
        "INSERT INTO meta (key, value) VALUES (?, ?) "
        "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
        (key, value),
    )


def add_metrics(conn, rows):
    conn.executemany(
        "INSERT INTO metrics (cell_id, name, value) VALUES (?, ?, ?)", rows
    )


def status_counts(conn, cutoff):
    return conn.execute(
        "SELECT status, COUNT(*) FROM ("
        " SELECT cell_key, status FROM cells WHERE created_at > ?"
        ") GROUP BY status ORDER BY status",
        (cutoff,),
    ).fetchall()


def newest_rowid(conn):
    # implicit rowid column is always legal
    return conn.execute("SELECT rowid FROM cells ORDER BY rowid DESC").fetchone()
