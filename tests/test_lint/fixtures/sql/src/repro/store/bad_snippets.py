"""SQL drifted from schema.py: every statement here is wrong somehow."""

import sqlite3


def open_store(path):
    return sqlite3.connect(path)


def unknown_table(conn):
    return conn.execute("SELECT id FROM cels").fetchall()  # FINDING: typo'd table


def unknown_column(conn):
    return conn.execute("SELECT cell_hash FROM cells").fetchall()  # FINDING


def unknown_qualified(conn):
    sql = "SELECT c.value FROM metrics m JOIN cells c ON c.id = m.cell_id"
    return conn.execute(sql).fetchall()  # FINDING: cells has no value column


def bad_insert_column(conn, k, v):
    conn.execute("INSERT INTO meta (key, val) VALUES (?, ?)", (k, v))  # FINDING


def bad_insert_arity(conn):
    conn.execute("INSERT INTO cells (cell_key, status) VALUES (?, ?, ?)")  # FINDING


def bad_params_arity(conn, key):
    conn.execute("UPDATE cells SET status = ? WHERE cell_key = ?", (key,))  # FINDING


def bad_assembled(conn):
    sql = "SELECT id FROM cells"
    sql += " ORDER BY created_of"
    return conn.execute(sql).fetchall()  # FINDING: typo'd ORDER BY column
