"""Declared schema for the sql-schema fixture mini-project.

The checker reads ``_DDL`` from this file's AST (relative to the
project root), exactly as it reads the real ``store/schema.py``.
"""

SCHEMA_VERSION = 1

_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    id         INTEGER PRIMARY KEY AUTOINCREMENT,
    cell_key   TEXT NOT NULL,
    status     TEXT,
    result     TEXT,
    created_at TEXT,
    UNIQUE (cell_key)
);
CREATE TABLE IF NOT EXISTS metrics (
    cell_id INTEGER NOT NULL REFERENCES cells(id),
    name    TEXT NOT NULL,
    value   REAL,
    PRIMARY KEY (cell_id, name)
);
CREATE INDEX IF NOT EXISTS cells_by_status ON cells (status);
"""
