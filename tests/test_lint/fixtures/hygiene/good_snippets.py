"""Registry-hygiene fixtures that MUST all pass clean (sans test refs)."""


def register_approach(name, **kwargs):
    def deco(fn):
        return fn

    return deco


def register_experiment(name, **kwargs):
    def deco(fn):
        return fn

    return deco


def register_workload(cls):
    return cls


@register_approach("documented", synonyms=("doc", "docd"))
def _documented(topology):
    """A properly documented entry with unique synonyms."""

    return topology


@register_experiment("described", description="description kwarg counts")
def _described(profile):
    return [profile]


@register_workload
class DocumentedWorkload:
    """A documented workload; name/synonyms read from the class body."""

    name = "documented-workload"
    synonyms = ("dw",)
