"""Registry-hygiene fixtures that MUST each produce a finding.

The checker recognizes ``@register_*`` decorators syntactically, so these
stub decorators exercise it without importing any registry.
"""


def register_approach(name, **kwargs):
    def deco(fn):
        return fn

    return deco


def register_workload(cls):
    return cls


@register_approach("undocumented")
def _undocumented(topology):  # FINDING: no docstring
    return topology


@register_approach("dup-synonym", synonyms=("dup", "dup"))
def _dup_synonym(topology):  # FINDING: synonym repeated
    """Registers the same synonym twice."""

    return topology


@register_approach("collider", synonyms=("shared-name",))
def _collider(topology):
    """First claimant of 'shared-name'."""

    return topology


@register_approach("Shared-Name")
def _shadowing(topology):  # FINDING: collides case-insensitively
    """Second claimant of 'shared-name'."""

    return topology


@register_workload
class UndocumentedWorkload:  # FINDING: no docstring (name from body)
    name = "undocumented-workload"
