"""Mini-project stand-in for repro.approaches (purity fixture context)."""

ENGINE_KWARGS = frozenset({"kernel"})
