"""Cache-purity fixtures that MUST each produce a finding."""

import hashlib
import json

from .approaches import ENGINE_KWARGS  # noqa: F401  (imported, unused here)


class ResultCache:
    """Identity sink whose kwargs flow is missing the no-fork filter."""

    def key(self, approach, kwargs=()):
        payload = ",".join(
            f"{k}={v!r}" for k, v in sorted(kwargs)  # FINDING: no guard
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def hash_options(options):
    # autodetected sink: hashlib digest fed from an options-like param
    return hashlib.sha256(repr(sorted(options)).encode()).hexdigest()  # FINDING


def direct_injection(cache):
    # engine kwarg literal passed straight into the sink
    return cache.key("sabre", kwargs=[("kernel", "c"), ("seed", 1)])  # FINDING


def forwarding_wrapper(cache, kwargs):
    return cache.key("sabre", kwargs=kwargs)


def transitive_injection(cache):
    # the literal enters one wrapper above the sink
    return forwarding_wrapper(cache, [("kernel", "python")])  # FINDING


def identity_columns(approach, kind, size, kwargs=()):
    # store cell-key denormalization missing the no-fork filter
    payload = json.dumps(sorted((str(k), repr(v)) for k, v in kwargs))  # FINDING
    return {"approach": approach, "kind": kind, "size": size, "kwargs": payload}


def store_injection():
    # engine kwarg literal entering the store's cell identity
    return identity_columns("sabre", "grid", 5, kwargs=[("kernel", "c")])  # FINDING


ENGINE_KWARGS_COPY = None
ENGINE_KWARGS = frozenset({"kernel"})  # FINDING: second definition drifts
