"""Cache-purity fixtures that MUST all pass clean."""

import hashlib

from .approaches import ENGINE_KWARGS


class ResultCache:
    """Identity sink with the sanctioned ENGINE_KWARGS filter."""

    def key(self, approach, kwargs=()):
        payload = ",".join(
            f"{k}={v!r}"
            for k, v in sorted(kwargs)
            if str(k) not in ENGINE_KWARGS
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def hash_options(options):
    """Autodetected sink, filtered: clean."""

    kept = {k: v for k, v in options.items() if k not in ENGINE_KWARGS}
    return hashlib.sha256(repr(sorted(kept.items())).encode()).hexdigest()


def clean_call_site(cache):
    return cache.key("sabre", kwargs=[("seed", 1), ("passes", 3)])


def forwarding_wrapper(cache, kwargs):
    return cache.key("sabre", kwargs=kwargs)


def clean_transitive(cache):
    return forwarding_wrapper(cache, [("seed", 2)])
