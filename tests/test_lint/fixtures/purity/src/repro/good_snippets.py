"""Cache-purity fixtures that MUST all pass clean."""

import hashlib
import json

from .approaches import ENGINE_KWARGS


class ResultCache:
    """Identity sink with the sanctioned ENGINE_KWARGS filter."""

    def key(self, approach, kwargs=()):
        payload = ",".join(
            f"{k}={v!r}"
            for k, v in sorted(kwargs)
            if str(k) not in ENGINE_KWARGS
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def hash_options(options):
    """Autodetected sink, filtered: clean."""

    kept = {k: v for k, v in options.items() if k not in ENGINE_KWARGS}
    return hashlib.sha256(repr(sorted(kept.items())).encode()).hexdigest()


def clean_call_site(cache):
    return cache.key("sabre", kwargs=[("seed", 1), ("passes", 3)])


def forwarding_wrapper(cache, kwargs):
    return cache.key("sabre", kwargs=kwargs)


def clean_transitive(cache):
    return forwarding_wrapper(cache, [("seed", 2)])


def identity_columns(approach, kind, size, kwargs=()):
    """Store cell-key denormalization with the sanctioned filter."""

    payload = json.dumps(
        sorted(
            (str(k), repr(v)) for k, v in kwargs if str(k) not in ENGINE_KWARGS
        )
    )
    return {"approach": approach, "kind": kind, "size": size, "kwargs": payload}


def clean_store_call():
    return identity_columns("sabre", "grid", 5, kwargs=[("seed", 1)])
