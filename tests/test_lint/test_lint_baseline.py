"""Baseline semantics, the committed-baseline meta-test, and the seeded
regression drill from the acceptance criteria.

The meta-test is the real gate: it re-lints ``src/repro`` exactly as
``scripts/ci.sh`` does and asserts the committed ``LINT_BASELINE.txt``
matches a fresh run -- no new findings, no stale entries.  The regression
drill proves the gate has teeth: it re-introduces a historical bug shape
(an unsorted directory listing in the cache-merge path) into a copy of
the real module and asserts the run fails naming file, line and checker.
"""

from collections import Counter

from repro.lint import Finding, run_lint
from repro.lint.baseline import apply_baseline, format_baseline, load_baseline


def _finding(msg="m", path="src/x.py", line=1):
    return Finding(path=path, line=line, checker="determinism", message=msg)


# ----------------------------------------------------------- baseline unit
def test_baseline_splits_new_grandfathered_stale():
    findings = [_finding("kept"), _finding("fresh")]
    baseline = Counter({
        "src/x.py:determinism:kept": 1,
        "src/x.py:determinism:gone": 1,
    })
    new, grandfathered, stale = apply_baseline(findings, baseline)
    assert [f.message for f in new] == ["fresh"]
    assert [f.message for f in grandfathered] == ["kept"]
    assert stale == ["src/x.py:determinism:gone"]


def test_baseline_is_a_multiset():
    """Two identical findings need two baseline lines; fixing one of them
    still ratchets (the second occurrence becomes new/stale)."""

    two = [_finding(line=1), _finding(line=9)]
    one_entry = Counter({"src/x.py:determinism:m": 1})
    new, grandfathered, stale = apply_baseline(two, one_entry)
    assert len(new) == 1 and len(grandfathered) == 1 and stale == []

    # ...and an over-counted baseline reports the surplus as stale
    new, grandfathered, stale = apply_baseline(
        [two[0]], Counter({"src/x.py:determinism:m": 2})
    )
    assert new == [] and len(grandfathered) == 1
    assert stale == ["src/x.py:determinism:m"]


def test_baseline_file_roundtrip(tmp_path):
    path = tmp_path / "baseline.txt"
    path.write_text(format_baseline([_finding("a"), _finding("b")]))
    entries = load_baseline(path)
    assert entries == Counter({
        "src/x.py:determinism:a": 1,
        "src/x.py:determinism:b": 1,
    })
    # comments and blanks are ignored
    path.write_text("# comment\n\nsrc/x.py:determinism:a\n")
    assert load_baseline(path) == Counter({"src/x.py:determinism:a": 1})


# -------------------------------------------------------------- meta-test
def test_committed_baseline_matches_fresh_run(repo_root):
    """The gate ci.sh enforces, as a test: a fresh lint of src/repro must
    be fully absorbed by LINT_BASELINE.txt with nothing stale.  Keeping
    this green keeps 'python -m repro.lint src/repro --baseline
    LINT_BASELINE.txt' exiting 0."""

    findings = run_lint([repo_root / "src" / "repro"], root=repo_root)
    baseline = load_baseline(repo_root / "LINT_BASELINE.txt")
    new, _, stale = apply_baseline(findings, baseline)
    assert [f.render() for f in new] == []
    assert stale == []


# ----------------------------------------------------- seeded regression
def test_seeded_regression_is_caught_with_file_line_checker(
    tmp_path, repo_root
):
    """Re-introduce the bug class the determinism checker exists for --
    cache merge iterating a directory in filesystem order -- into a copy
    of the REAL cache module, and assert the lint run fails pointing at
    exactly that file/line/checker."""

    project = tmp_path / "proj"
    for rel in ("src/repro/approaches.py", "src/repro/eval/cache.py"):
        dst = project / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_text((repo_root / rel).read_text())
    (project / "pyproject.toml").write_text("[project]\nname = 'x'\n")

    # the pristine copy lints clean: whatever the drill flags below is
    # introduced by the seeded edit, not ambient noise in the module
    assert run_lint([project / "src"], root=project) == []

    cache = project / "src" / "repro" / "eval" / "cache.py"
    seeded = cache.read_text().replace(
        "sorted(other.glob(", "list(other.glob(", 1
    )
    assert seeded != cache.read_text(), "seed site vanished from cache.py"
    cache.write_text(seeded)
    expected_line = next(
        i
        for i, line in enumerate(seeded.splitlines(), start=1)
        if "list(other.glob(" in line
    )

    findings = run_lint([project / "src"], root=project)
    assert [(f.path, f.line, f.checker) for f in findings] == [
        ("src/repro/eval/cache.py", expected_line, "determinism")
    ]
