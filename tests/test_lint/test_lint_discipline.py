"""The ``error-discipline`` checker against its fixture pair."""

BAD = "discipline/bad_snippets.py"
GOOD = "discipline/good_snippets.py"


def test_bad_fixture_flags_every_marked_line(lint_fixture, marked_lines):
    findings = lint_fixture(BAD, only=["error-discipline"])
    assert [f.line for f in findings] == marked_lines(BAD)
    assert all(f.checker == "error-discipline" for f in findings)


def test_good_fixture_is_clean(lint_fixture):
    assert lint_fixture(GOOD, only=["error-discipline"]) == []


def test_messages_distinguish_bare_broad_and_assert(lint_fixture):
    findings = lint_fixture(BAD, only=["error-discipline"])
    blob = "\n".join(f.message for f in findings)
    assert "bare except" in blob
    assert "except Exception:" in blob
    assert "except BaseException:" in blob
    assert "python -O" in blob


def test_asserts_allowed_in_test_code(tmp_path):
    """The assert rule is scoped to library code: files under tests/ (or
    named test_*) keep their asserts."""

    from repro.lint import run_lint

    lib = tmp_path / "src" / "lib.py"
    lib.parent.mkdir(parents=True)
    lib.write_text("def f(x):\n    assert x\n    return x\n")
    test = tmp_path / "tests" / "test_lib.py"
    test.parent.mkdir(parents=True)
    test.write_text("def test_f():\n    assert True\n")

    findings = run_lint([tmp_path], root=tmp_path, only=["error-discipline"])
    assert [(f.path, f.line) for f in findings] == [("src/lib.py", 2)]
