"""The ``registry-hygiene`` checker against its fixture pair.

The fixtures define stub ``register_*`` decorators in-file (registration
sites are recognized syntactically, nothing is imported).  The fixture
directory has no ``tests/`` tree, so the test-reference rule is exercised
separately against a synthetic mini-project.
"""

from repro.lint import run_lint

BAD = "hygiene/bad_snippets.py"
GOOD = "hygiene/good_snippets.py"


def test_bad_fixture_flags_every_marked_line(lint_fixture, marked_lines):
    findings = lint_fixture(BAD, only=["registry-hygiene"])
    assert [f.line for f in findings] == marked_lines(BAD)
    assert all(f.checker == "registry-hygiene" for f in findings)


def test_good_fixture_is_clean(lint_fixture):
    assert lint_fixture(GOOD, only=["registry-hygiene"]) == []


def test_messages_name_each_rot_kind(lint_fixture):
    findings = lint_fixture(BAD, only=["registry-hygiene"])
    blob = "\n".join(f.message for f in findings)
    assert "has no docstring" in blob
    assert "more than once" in blob  # duplicated synonym
    assert "collides with" in blob  # case-insensitive cross-entry clash
    assert "'undocumented-workload'" in blob  # name read from class body


def _mini_project(tmp_path, tests_body):
    src = tmp_path / "src" / "mod.py"
    src.parent.mkdir(parents=True)
    src.write_text(
        "def register_approach(name, **kwargs):\n"
        "    def deco(fn):\n"
        "        return fn\n"
        "    return deco\n"
        "\n"
        '@register_approach("ghost-name")\n'
        "def _ghost(topology):\n"
        '    """Documented, but possibly untested."""\n'
        "    return topology\n"
    )
    tests = tmp_path / "tests" / "test_mod.py"
    tests.parent.mkdir(parents=True)
    tests.write_text(tests_body)
    return src


def test_unreferenced_name_is_flagged(tmp_path):
    src = _mini_project(tmp_path, "def test_nothing():\n    pass\n")
    findings = run_lint([src], root=tmp_path, only=["registry-hygiene"])
    assert len(findings) == 1
    assert "'ghost-name'" in findings[0].message
    assert "never referenced" in findings[0].message


def test_referenced_name_passes(tmp_path):
    src = _mini_project(
        tmp_path,
        'def test_ghost():\n    assert "ghost-name"\n',
    )
    assert run_lint([src], root=tmp_path, only=["registry-hygiene"]) == []


def test_reference_rule_skipped_without_tests_tree(tmp_path):
    """Linting a loose snippet (no tests/ dir) must not demand test refs."""

    src = tmp_path / "mod.py"
    src.write_text(
        "def register_approach(name, **kwargs):\n"
        "    def deco(fn):\n"
        "        return fn\n"
        "    return deco\n"
        "\n"
        '@register_approach("loose")\n'
        "def _loose(topology):\n"
        '    """Documented."""\n'
        "    return topology\n"
    )
    assert run_lint([src], root=tmp_path, only=["registry-hygiene"]) == []
