"""Shared fixtures for the repro.lint test suite.

Fixture snippets live under ``fixtures/`` as real ``*.py`` files (never
imported -- linted as data): each checker has a ``bad_snippets.py`` whose
``# FINDING`` lines must each be flagged, and a ``good_snippets.py`` that
must come back clean.  The purity fixtures are a mini-project (that
checker reads ``src/repro/approaches.py`` relative to the project root).

Helpers are exposed as fixtures (not module-level imports) because the
top-level ``tests/conftest.py`` shadows the bare ``conftest`` module name.
"""

from pathlib import Path
from typing import List

import pytest

from repro.lint import run_lint

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="session")
def fixtures_dir() -> Path:
    return FIXTURES


@pytest.fixture(scope="session")
def repo_root() -> Path:
    return REPO_ROOT


@pytest.fixture(scope="session")
def lint_fixture():
    """Lint one fixture file, rooted at its own directory."""

    def _lint(relpath: str, *, only=None):
        path = FIXTURES / relpath
        return run_lint([path], root=path.parent, only=only)

    return _lint


@pytest.fixture(scope="session")
def lint_purity_fixture():
    """Lint one file of the purity mini-project (root = the mini-project)."""

    def _lint(filename: str):
        root = FIXTURES / "purity"
        return run_lint([root / "src" / "repro" / filename], root=root)

    return _lint


@pytest.fixture(scope="session")
def lint_sql_fixture():
    """Lint one store/ file of the sql mini-project (root = the project)."""

    def _lint(filename: str):
        root = FIXTURES / "sql"
        return run_lint(
            [root / "src" / "repro" / "store" / filename],
            root=root,
            only=["sql-schema"],
        )

    return _lint


@pytest.fixture(scope="session")
def marked_lines():
    """1-based line numbers carrying a ``# FINDING`` marker."""

    def _lines(relpath: str) -> List[int]:
        path = FIXTURES / relpath
        return [
            i
            for i, line in enumerate(path.read_text().splitlines(), start=1)
            if "# FINDING" in line
        ]

    return _lines
