"""Unit tests for the shared whole-program index (repro.lint.graph).

Small synthetic projects written to tmp_path: import aliasing, a
re-export chain through a package ``__init__``, and a call-graph cycle
(reachability must terminate and include both directions).
"""

from repro.lint.framework import Project
from repro.lint.graph import MODULE_BODY, FunctionRef, module_dotted


def make_project(tmp_path, files):
    paths = []
    for rel, text in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(text)
        paths.append(p)
    return Project.load(paths, root=tmp_path)


def test_module_dotted():
    assert module_dotted("src/repro/store/store.py") == (
        "repro.store.store", False,
    )
    assert module_dotted("src/repro/store/__init__.py") == (
        "repro.store", True,
    )
    assert module_dotted("mod.py") == ("mod", False)


def test_import_alias_resolves_cross_module(tmp_path):
    graph = make_project(tmp_path, {
        "helpers.py": "def compute():\n    return 1\n",
        "main.py": (
            "import helpers as h\n"
            "def run():\n"
            "    return h.compute()\n"
        ),
    }).graph()
    callees = graph.callees_of(FunctionRef("main.py", "run"))
    assert FunctionRef("helpers.py", "compute") in callees


def test_from_import_rename_and_reexport_chain(tmp_path):
    graph = make_project(tmp_path, {
        "pkg/__init__.py": "from .inner import work\n",
        "pkg/inner.py": "def work():\n    return 2\n",
        "main.py": (
            "from pkg import work as w\n"
            "def run():\n"
            "    return w()\n"
        ),
    }).graph()
    callees = graph.callees_of(FunctionRef("main.py", "run"))
    assert FunctionRef("pkg/inner.py", "work") in callees


def test_call_graph_cycle_terminates(tmp_path):
    graph = make_project(tmp_path, {
        "a.py": (
            "import b\n"
            "def f(n):\n"
            "    return b.g(n - 1)\n"
        ),
        "b.py": (
            "import a\n"
            "def g(n):\n"
            "    return a.f(n) if n else 0\n"
        ),
    }).graph()
    f, g = FunctionRef("a.py", "f"), FunctionRef("b.py", "g")
    forward = graph.reachable({f})
    assert {f, g} <= forward
    backward = graph.reachable({f}, reverse=True)
    assert g in backward


def test_module_body_calls_indexed(tmp_path):
    graph = make_project(tmp_path, {
        "boot.py": (
            "def setup():\n"
            "    return 1\n"
            "STATE = setup()\n"
        ),
    }).graph()
    callees = graph.callees_of(FunctionRef("boot.py", MODULE_BODY))
    assert FunctionRef("boot.py", "setup") in callees


def test_method_resolution_via_self(tmp_path):
    graph = make_project(tmp_path, {
        "svc.py": (
            "class Service:\n"
            "    def outer(self):\n"
            "        return self.inner()\n"
            "    def inner(self):\n"
            "        return 3\n"
        ),
    }).graph()
    callees = graph.callees_of(FunctionRef("svc.py", "Service.outer"))
    assert FunctionRef("svc.py", "Service.inner") in callees
