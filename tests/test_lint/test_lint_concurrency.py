"""The ``concurrency`` checker against its fixture pair.

``bad_snippets.py`` exercises all three rules: a module-scope RNG and
sqlite connection read by a worker function reached through
``pool.map``, a connection created in the parent and passed through
``Process(args=...)``, and a ``print`` reachable from a registered
SIGALRM handler.  ``good_snippets.py`` does the same jobs with
per-worker resources and a flag-only handler.
"""


def test_bad_fixture_flags_every_marked_line(lint_fixture, marked_lines):
    findings = lint_fixture("concurrency/bad_snippets.py", only=["concurrency"])
    assert [f.line for f in findings] == marked_lines(
        "concurrency/bad_snippets.py"
    )
    assert all(f.checker == "concurrency" for f in findings)


def test_each_rule_fires(lint_fixture):
    findings = lint_fixture("concurrency/bad_snippets.py", only=["concurrency"])
    blob = "\n".join(f.message for f in findings)
    assert "module-scope random.Random instance 'RNG'" in blob
    assert "module-scope sqlite connection 'DB'" in blob
    assert "worker-side function worker()" in blob
    assert "sqlite connection 'conn'" in blob
    assert "passed across a fork/submit point" in blob
    assert "call to print()" in blob
    assert "signal handler" in blob


def test_good_fixture_is_clean(lint_fixture):
    assert lint_fixture(
        "concurrency/good_snippets.py", only=["concurrency"]
    ) == []
