"""Concurrency and durability drills for the SQLite experiment store.

Two properties carry over from the formats the store replaces:

* **Concurrent shard writers are safe** (the directory cache got this
  from atomic renames; the store gets it from WAL + ``BEGIN IMMEDIATE``):
  N processes hammering one database must lose nothing, agree on merge
  outcomes, and never block a concurrent reader.
* **A crash mid-write loses at most the uncommitted tail** (the JSONL
  journal got this from fsync-per-append + torn-tail repair; the store
  gets it from ``synchronous=FULL`` WAL commits).  The drill mirrors
  ``test_journal_durability.py``: tear the WAL at swept byte offsets and
  hold recovery to "exactly a committed prefix, still appendable".
"""

import multiprocessing

from repro.eval import CacheMergeConflict, CompilationResult
from repro.store import ExperimentStore, identity_columns

WRITERS = 4
CELLS_PER_WRITER = 12

#: every writer merges these too: one shared identical cell (skip-race)
#: and one divergent cell (exactly one import may win the constraint)
SHARED_KEY = "beef" * 6
DIVERGENT_KEY = "feed" * 6


def _result(depth=40, **kwargs):
    return CompilationResult(
        "sabre", "Grid 3*3", 9, depth=depth, swap_count=22,
        compile_time_s=0.1, verified=True, **kwargs,
    )


def _writer(args):
    """One shard process: distinct puts + contended merges on a shared DB."""

    path, writer_id = args
    outcomes = {"imported": 0, "skipped": 0, "conflict": 0}
    with ExperimentStore(path) as store:
        for i in range(CELLS_PER_WRITER):
            key = f"{writer_id:04x}{i:020x}"
            store.put_cell(
                key,
                _result(depth=100 * writer_id + i),
                code="v1",
                identity=identity_columns("sabre", "grid", 3, (("seed", i),)),
            )
        outcomes[store.merge_cell(SHARED_KEY, _result(depth=7))] += 1
        try:
            outcome = store.merge_cell(
                DIVERGENT_KEY, _result(depth=writer_id)
            )
            outcomes[outcome] += 1
        except CacheMergeConflict:
            outcomes["conflict"] += 1
    return outcomes


class TestMultiprocessStress:
    def test_n_writers_and_a_live_reader_under_wal(self, tmp_path):
        db = tmp_path / "s.db"
        ExperimentStore(db).close()  # create before forking (no create race)
        with multiprocessing.Pool(WRITERS) as pool:
            async_result = pool.map_async(
                _writer, [(str(db), wid) for wid in range(WRITERS)]
            )
            # Live reader: WAL must serve consistent snapshots while the
            # writers commit; observed cell counts only ever grow.
            observed = []
            with ExperimentStore(db) as reader:
                while not async_result.ready():
                    observed.append(reader.counts()["cells"])
                    async_result.wait(0.005)
            outcomes = async_result.get()
        assert observed == sorted(observed)

        total = CELLS_PER_WRITER * WRITERS + 2  # + shared + divergent
        with ExperimentStore(db) as store:
            assert store.counts()["cells"] == total
            # every writer's every cell landed intact
            for wid in range(WRITERS):
                for i in range(CELLS_PER_WRITER):
                    cell = store.get_cell(f"{wid:04x}{i:020x}")
                    assert cell is not None and cell["depth"] == 100 * wid + i
            # the shared identical cell: one import, the rest skips
            imports = sum(o["imported"] for o in outcomes)
            skips = sum(o["skipped"] for o in outcomes)
            conflicts = sum(o["conflict"] for o in outcomes)
            # per writer: 1 shared merge + 1 divergent merge = 2 outcomes
            assert imports + skips + conflicts == 2 * WRITERS
            # shared cell: exactly 1 import; divergent: exactly 1 import,
            # the other WRITERS-1 attempts must raise, never overwrite
            assert imports == 2
            assert skips == WRITERS - 1
            assert conflicts == WRITERS - 1
            assert store.get_cell(SHARED_KEY)["depth"] == 7
            assert store.get_cell(DIVERGENT_KEY)["depth"] in range(WRITERS)

    def test_concurrent_fresh_creation_is_race_free(self, tmp_path):
        # No pre-created DB: every process races through schema creation.
        db = tmp_path / "fresh.db"
        with multiprocessing.Pool(WRITERS) as pool:
            outcomes = pool.map(
                _writer, [(str(db), wid) for wid in range(WRITERS)]
            )
        assert sum(o["imported"] for o in outcomes) == 2
        with ExperimentStore(db) as store:
            assert store.counts()["cells"] == CELLS_PER_WRITER * WRITERS + 2


class TestTornWal:
    """Crash-consistency sweep: the WAL torn at arbitrary byte offsets."""

    def _filled_store_bytes(self, root, n=8):
        """(db bytes, wal bytes, keys) captured mid-flight, before close.

        ``close()`` checkpoints the WAL into the main file; a crash does
        not.  Copying the file bytes while the writer is still open is
        exactly the on-disk state a power cut would leave.
        """

        root.mkdir()
        db = root / "s.db"
        keys = [f"{i:024x}" for i in range(n)]
        store = ExperimentStore(db, page_size=512)
        for i, key in enumerate(keys):
            store.put_cell(key, _result(depth=i), code="v1")
        db_bytes = db.read_bytes()
        wal_bytes = (root / "s.db-wal").read_bytes()
        store.close()
        return db_bytes, wal_bytes, keys

    def test_torn_wal_recovers_exactly_a_committed_prefix(self, tmp_path):
        """Property: for every tear offset, recovery yields an intact,
        appendable store holding a prefix of the committed cells.

        Commits are sequential in the WAL, so SQLite's recovery (replay
        valid frames up to the last complete commit record) must surface
        a prefix -- never a cell with a torn result, never cell k+1
        without cell k, and more surviving bytes never mean fewer cells.
        """

        db_bytes, wal_bytes, keys = self._filled_store_bytes(
            tmp_path / "master"
        )
        assert len(wal_bytes) > 4096  # the sweep has real frames to tear

        recovered = []
        # Stride keeps the sweep seconds-scale while still cutting inside
        # headers, mid-frame, and on frame boundaries (frame = 24 + 512).
        cuts = sorted(set(range(0, len(wal_bytes), 97)) | {len(wal_bytes)})
        for cut in cuts:
            root = tmp_path / f"cut{cut}"
            root.mkdir()
            (root / "s.db").write_bytes(db_bytes)
            (root / "s.db-wal").write_bytes(wal_bytes[:cut])
            with ExperimentStore(root / "s.db") as crashed:
                check = crashed._conn.execute(
                    "PRAGMA integrity_check"
                ).fetchone()[0]
                assert check == "ok", f"cut at byte {cut}"
                present = [k for k in keys if crashed.get_cell(k) is not None]
                assert present == keys[: len(present)], f"cut at byte {cut}"
                # still appendable after recovery
                crashed.put_cell("f" * 24, _result(depth=999))
                assert crashed.get_cell("f" * 24)["depth"] == 999
            recovered.append(len(present))

        assert recovered == sorted(recovered)  # monotone in surviving bytes
        assert recovered[0] == 0  # empty WAL: only the (re-created) schema
        assert recovered[-1] == len(keys)  # untruncated WAL replays fully

    def test_torn_wal_mid_run_resume_equivalent(self, tmp_path):
        """End-to-end flavor: tear the WAL, reopen, re-put the lost cells;
        the store converges to the uninterrupted state (the journal's
        resume contract, in store form)."""

        db_bytes, wal_bytes, keys = self._filled_store_bytes(
            tmp_path / "master", n=6
        )
        root = tmp_path / "crashed"
        root.mkdir()
        (root / "s.db").write_bytes(db_bytes)
        (root / "s.db-wal").write_bytes(wal_bytes[: len(wal_bytes) // 2])
        with ExperimentStore(root / "s.db") as store:
            survivors = [k for k in keys if store.get_cell(k) is not None]
            for i, key in enumerate(keys):
                store.put_cell(key, _result(depth=i), code="v1")
            final = {k: store.get_cell(k) for k in keys}
        assert len(survivors) < len(keys)
        assert [final[k]["depth"] for k in keys] == list(range(len(keys)))

    def test_torn_shm_is_ignored(self, tmp_path):
        # The -shm file is rebuilt on open; garbage there must not matter.
        db_bytes, wal_bytes, keys = self._filled_store_bytes(
            tmp_path / "master", n=3
        )
        root = tmp_path / "crashed"
        root.mkdir()
        (root / "s.db").write_bytes(db_bytes)
        (root / "s.db-wal").write_bytes(wal_bytes)
        (root / "s.db-shm").write_bytes(b"@@@ garbage @@@")
        with ExperimentStore(root / "s.db") as store:
            assert all(store.get_cell(k) is not None for k in keys)
