"""Compiled SABRE kernel: bit-equality, runtime selection, graceful fallback.

The compiled routing kernel (``repro.baselines._sabre_kernel``) must be a
pure speed choice: same swap sequence, same emitted ops, same metrics, same
RNG consumption as the Python paths, on every workload / architecture / seed
-- that contract is what lets the eval harness share cache entries across
engines and lets CI force ``REPRO_SABRE_KERNEL=python`` without changing a
single number.  The seeded fuzz suite here sweeps the full workload x
architecture cross-product with ten seeds each; the selection tests pin the
``kernel=`` / ``REPRO_SABRE_KERNEL`` resolution rules and the degradation
behavior when the extension is absent.
"""

import numpy as np
import pytest

from repro.arch import (
    CaterpillarTopology,
    GridTopology,
    LatticeSurgeryTopology,
    LNNTopology,
    SycamoreTopology,
)
from repro.baselines import SabreMapper, sabre_kernel
from repro.baselines.sabre import KERNEL_ENV_VAR
from repro.baselines.sabre_kernel import kernel_available
from repro.eval.cache import ResultCache
from repro.eval.journal import cell_key
from repro.eval.parallel import CellSpec
from repro.eval.runners import sample_verifies
from repro.workloads import get_workload

requires_kernel = pytest.mark.skipif(
    not kernel_available(),
    reason="compiled SABRE kernel not built (python setup.py build_ext --inplace)",
)


@pytest.fixture(autouse=True)
def _clear_kernel_env(monkeypatch):
    """Neutralize the CI legs' REPRO_SABRE_KERNEL override.

    The CI matrix forces one engine repo-wide; these tests exist precisely
    to compare engines against each other, so they must see the constructor
    argument, not the leg's override.  Tests that probe the override set it
    themselves (their monkeypatch.setenv runs after this delenv)."""

    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)

# All five architectures, at sizes small enough that the full fuzz sweep
# stays seconds-scale but large enough that routing is non-trivial (front
# layers, extended sets and candidate sets all interact).
ARCHITECTURES = [
    pytest.param(lambda: LNNTopology(7), id="lnn7"),
    pytest.param(lambda: GridTopology(4, 4), id="grid44"),
    pytest.param(lambda: SycamoreTopology(4), id="sycamore4"),
    pytest.param(lambda: CaterpillarTopology.regular_groups(3), id="heavyhex3"),
    pytest.param(lambda: LatticeSurgeryTopology(4), id="lattice4"),
]

WORKLOADS = ["qft", "qaoa", "random"]

SEEDS = list(range(10))


def _mapped_pair(topo, circuit, seed, **kwargs):
    """Map ``circuit`` with the Python and the compiled kernel."""

    py = SabreMapper(topo, seed=seed, kernel="python", **kwargs).map_circuit(circuit)
    cc = SabreMapper(topo, seed=seed, kernel="c", **kwargs).map_circuit(circuit)
    return py, cc


@requires_kernel
@pytest.mark.parametrize("make_topo", ARCHITECTURES)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_kernel_bit_identical_across_seeds(make_topo, workload):
    """C and Python routing agree gate-for-gate on >= 10 seeds per cell."""

    topo = make_topo()
    wl = get_workload(workload)
    n = topo.num_qubits
    for seed in SEEDS:
        params = wl.resolve_params(**({"seed": seed} if workload != "qft" else {}))
        circuit = wl.build_cached(n, **params)
        py, cc = _mapped_pair(topo, circuit, seed)
        assert cc.ops == py.ops, (
            f"compiled kernel diverged: {workload} on {topo.name} seed {seed}"
        )
        assert cc.depth() == py.depth()
        assert cc.swap_count() == py.swap_count()
        assert cc.final_layout() == py.final_layout()
        assert py.metadata["kernel"] == "python"
        assert cc.metadata["kernel"] == "c"


@requires_kernel
@pytest.mark.parametrize("make_topo", ARCHITECTURES)
def test_kernel_matches_reference_loop(make_topo):
    """The compiled kernel also matches the textbook reference loop."""

    topo = make_topo()
    ref = SabreMapper(topo, seed=3, kernel="python", vectorized=False).map_qft(
        topo.num_qubits
    )
    cc = SabreMapper(topo, seed=3, kernel="c").map_qft(topo.num_qubits)
    assert cc.ops == ref.ops


@requires_kernel
def test_kernel_routing_stats_match():
    """`last_routing_stats` (iterations/rebuilds/candidates) agree exactly."""

    topo = GridTopology(5, 5)
    py = SabreMapper(topo, seed=0, kernel="python")
    cc = SabreMapper(topo, seed=0, kernel="c")
    assert py.map_qft(25).ops == cc.map_qft(25).ops
    assert py.last_routing_stats == cc.last_routing_stats
    assert py.last_kernel == "python"
    assert cc.last_kernel == "c"


@requires_kernel
def test_kernel_rng_state_round_trip():
    """The kernel leaves the mapper's RNG stream exactly where Python would.

    Mapping twice with the same mapper object must behave identically across
    kernels -- a drifted Mersenne-Twister state would show up as a diverged
    second circuit even if the first matched.
    """

    import random

    topo = GridTopology(4, 4)
    streams = {}
    for kern in ("python", "c"):
        mapper = SabreMapper(topo, seed=11, kernel=kern)
        first = mapper.map_qft(16)
        # the mapper reseeds per map_circuit; probe the raw route-level RNG
        rng = random.Random(123)
        builder, layout = mapper._route(
            get_workload("qft").build_cached(16), list(range(16)), rng, emit=True
        )
        streams[kern] = (first.ops, builder.ops, layout, rng.getstate())
    assert streams["python"] == streams["c"]


@requires_kernel
@pytest.mark.parametrize("passes", [1, 2])
def test_kernel_single_and_double_pass(passes):
    topo = SycamoreTopology(4)
    py, cc = _mapped_pair(
        topo, get_workload("qft").build_cached(topo.num_qubits), 2, passes=passes
    )
    assert cc.ops == py.ops


@requires_kernel
def test_env_override_forces_python(monkeypatch):
    """REPRO_SABRE_KERNEL=python beats an explicit kernel="c" request."""

    monkeypatch.setenv(KERNEL_ENV_VAR, "python")
    mapper = SabreMapper(GridTopology(3, 3), seed=0, kernel="c")
    mapper.map_qft(9)
    assert mapper.last_kernel == "python"


@requires_kernel
def test_env_override_forces_c(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "c")
    mapper = SabreMapper(GridTopology(3, 3), seed=0, kernel="python")
    mapper.map_qft(9)
    assert mapper.last_kernel == "c"


def test_env_override_rejects_unknown(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "fortran")
    mapper = SabreMapper(GridTopology(3, 3), seed=0)
    with pytest.raises(ValueError, match="fortran"):
        mapper.map_qft(9)


def test_unknown_kernel_rejected_at_construction():
    with pytest.raises(ValueError, match="unknown SABRE kernel"):
        SabreMapper(GridTopology(3, 3), kernel="rust")


@requires_kernel
def test_non_default_scorer_configs_stay_python():
    """auto/c only cover the default scoring config; the reference loop and
    the opt-in incremental scorer keep their Python engines (bit-identical
    anyway, but `vectorized=False` is an explicit request for the textbook
    loop and must stay meaningful under REPRO_SABRE_KERNEL=c)."""

    topo = GridTopology(3, 3)
    ref = SabreMapper(topo, seed=0, kernel="c", vectorized=False)
    ref.map_qft(9)
    assert ref.last_kernel == "python"
    inc = SabreMapper(topo, seed=0, kernel="c", incremental=True)
    inc.map_qft(9)
    assert inc.last_kernel == "python"


class TestGracefulDegradation:
    """kernel="auto" must survive an unbuilt extension; kernel="c" must not."""

    def test_auto_falls_back_when_extension_absent(self, monkeypatch):
        monkeypatch.setattr(sabre_kernel, "_kernel", None)
        mapper = SabreMapper(GridTopology(3, 3), seed=4, kernel="auto")
        mapped = mapper.map_qft(9)
        assert mapper.last_kernel == "python"
        ref = SabreMapper(GridTopology(3, 3), seed=4, kernel="python").map_qft(9)
        assert mapped.ops == ref.ops

    def test_explicit_c_raises_with_build_hint(self, monkeypatch):
        monkeypatch.setattr(sabre_kernel, "_kernel", None)
        mapper = SabreMapper(GridTopology(3, 3), seed=4, kernel="c")
        with pytest.raises(RuntimeError, match="build_ext"):
            mapper.map_qft(9)

    def test_env_c_raises_when_absent(self, monkeypatch):
        monkeypatch.setattr(sabre_kernel, "_kernel", None)
        monkeypatch.setenv(KERNEL_ENV_VAR, "c")
        mapper = SabreMapper(GridTopology(3, 3), seed=4)
        with pytest.raises(RuntimeError, match="build_ext"):
            mapper.map_qft(9)


class TestKernelIsMetricsNeutral:
    """Engine choice must not fork any harness identity."""

    def test_cache_key_does_not_fork_on_kernel(self, tmp_path):
        cache = ResultCache(tmp_path, version="vtest")
        base = cache.key("sabre", "grid", 5, kwargs=[("seed", 3)])
        for kern in ("auto", "c", "python"):
            assert (
                cache.key("sabre", "grid", 5, kwargs=[("seed", 3), ("kernel", kern)])
                == base
            )
        # non-engine kwargs still fork
        assert cache.key("sabre", "grid", 5, kwargs=[("seed", 4)]) != base

    def test_journal_cell_key_does_not_fork_on_kernel(self):
        base = cell_key(CellSpec.make("sabre", "grid", 5, seed=3))
        assert cell_key(CellSpec.make("sabre", "grid", 5, seed=3, kernel="c")) == base
        assert (
            cell_key(CellSpec.make("sabre", "grid", 5, seed=3, kernel="python"))
            == base
        )
        assert cell_key(CellSpec.make("sabre", "grid", 5, seed=4)) != base

    def test_sample_verify_decision_does_not_fork_on_kernel(self):
        for size in range(3, 12):
            base = sample_verifies("sabre", "grid", size, "qft", params=[("seed", 1)])
            forked = sample_verifies(
                "sabre", "grid", size, "qft", params=[("seed", 1), ("kernel", "c")]
            )
            assert base == forked

    def test_merge_tolerates_kernel_disagreement(self, tmp_path):
        """Two shards that computed one cell with different engines merge
        cleanly (extra["kernel"] is volatile); real metric disagreement
        still raises."""

        from repro.eval.cache import CacheMergeConflict
        from repro.eval.metrics import CompilationResult

        a = ResultCache(tmp_path / "a", version="v")
        b = ResultCache(tmp_path / "b", version="v")
        key = a.key("sabre", "grid", 3, kwargs=[("seed", 0)])

        def result(kernel, depth=10):
            return CompilationResult(
                approach="sabre",
                architecture="grid-3",
                num_qubits=9,
                status="ok",
                depth=depth,
                extra={"kernel": kernel},
            )

        a.put(key, result("c"))
        b.put(key, result("python"))
        stats = a.merge(tmp_path / "b")
        assert stats == {"imported": 0, "skipped": 1, "invalid": 0}

        c = ResultCache(tmp_path / "c", version="v")
        c.put(key, result("python", depth=11))  # genuinely different metrics
        with pytest.raises(CacheMergeConflict):
            a.merge(tmp_path / "c")

    @requires_kernel
    def test_run_cell_records_engine_in_extra(self):
        from repro.eval.runners import run_cell

        row = run_cell("sabre", "grid", 3, kernel="c", verify=False)
        assert row.status == "ok"
        assert row.extra["kernel"] == "c"
        row = run_cell("sabre", "grid", 3, kernel="python", verify=False)
        assert row.extra["kernel"] == "python"


@requires_kernel
def test_logical_swap_circuits_fall_back_to_reference():
    """Circuits containing logical SWAP gates keep the reference path (the
    compiled loop, like the numpy fast path, assumes a sweep-stable layout)."""

    from repro.circuit.circuit import Circuit

    topo = GridTopology(3, 3)
    circ = Circuit(4)
    circ.h(0)
    circ.cnot(0, 1)
    circ.swap(1, 2)
    circ.cphase(0, 3, 0.5)
    mapper = SabreMapper(topo, seed=0, kernel="c")
    mapped = mapper.map_circuit(circ)
    assert mapper.last_kernel == "python"
    ref = SabreMapper(topo, seed=0, kernel="python", vectorized=False).map_circuit(
        circ
    )
    assert mapped.ops == ref.ops
