"""Tests for the program-synthesis substrate (Appendix 5 / 7)."""

import pytest

from repro.synthesis import (
    Affine,
    Hole,
    MinExpr,
    Sketch,
    SynthesisTimeout,
    all_cross_pairs,
    covers_all_but_same_column,
    covers_all_pairs,
    grid_ie_sketch,
    grid_vertical_links,
    same_start_pairs,
    simulate_two_line_pattern,
    sycamore_ie_sketch,
    sycamore_links,
    synthesize_grid_ie,
    synthesize_sycamore_ie,
)


class TestHolesAndAffine:
    def test_hole_domain(self):
        h = Hole("x", -1, 2)
        assert list(h.domain) == [-1, 0, 1, 2]

    def test_hole_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            Hole("x", 3, 1)

    def test_affine_evaluation_with_constants(self):
        e = Affine(2, (("m", 3),))
        assert e.evaluate({"m": 4}, {}) == 14

    def test_affine_evaluation_with_holes(self):
        c = Hole("c", 0, 5)
        e = Affine(c, (("i", Hole("a", 0, 3)),))
        assert e.evaluate({"i": 2}, {"c": 1, "a": 2}) == 5
        assert sorted(h.name for h in e.holes()) == ["a", "c"]

    def test_affine_unbound_variable(self):
        e = Affine(0, (("m", 1),))
        with pytest.raises(KeyError):
            e.evaluate({}, {})

    def test_min_expr(self):
        e = MinExpr((Affine(3), Affine(0, (("i", 1),))))
        assert e.evaluate({"i": 7}, {}) == 3
        assert e.evaluate({"i": 1}, {}) == 1


class TestSimulation:
    def test_same_column_links_synced_only_cover_diagonal(self):
        covered = simulate_two_line_pattern(4, grid_vertical_links(4), 0, 0, 4)
        assert covered == same_start_pairs(4)

    def test_same_column_links_offset_cover_everything(self):
        covered = simulate_two_line_pattern(4, grid_vertical_links(4), 0, 1, 4)
        assert covers_all_pairs(covered, 4)

    @pytest.mark.parametrize("L", [2, 4, 6, 8, 10])
    def test_sycamore_links_synced_cover_all_but_same_column(self, L):
        covered = simulate_two_line_pattern(L, sycamore_links(L), 0, 0, L)
        assert covers_all_but_same_column(covered, L)
        assert not covers_all_pairs(covered, L)

    def test_out_of_range_link_rejected(self):
        with pytest.raises(ValueError):
            simulate_two_line_pattern(3, [(0, 5)], 0, 0, 3)

    def test_all_cross_pairs_count(self):
        assert len(all_cross_pairs(5)) == 25
        assert len(same_start_pairs(5)) == 5


class TestSketchSolver:
    def test_sycamore_sketch_finds_the_synced_solution(self):
        result = synthesize_sycamore_ie()
        assert result.found
        sol = result.first
        assert sol["offset_a"] == sol["offset_b"], "Sycamore travel paths are synced"
        assert sol["rounds_coeff"] >= 1

    def test_grid_sketch_finds_the_one_step_late_solution(self):
        result = synthesize_grid_ie()
        assert result.found
        sol = result.first
        assert abs(sol["offset_a"] - sol["offset_b"]) == 1, (
            "the grid pattern requires the second row to start one step late"
        )

    def test_grid_all_solutions_have_offset_difference_one(self):
        result = synthesize_grid_ie(find_all=True)
        assert result.solutions
        assert all(abs(s["offset_a"] - s["offset_b"]) == 1 for s in result.solutions)

    def test_synced_grid_spec_is_unsatisfiable(self):
        """Forcing both rows to the same offset makes the grid spec unsat --
        the experimental confirmation of the Appendix 7 discussion."""

        sketch = grid_ie_sketch()
        forced = Sketch(
            name="grid-synced",
            holes=[h for h in sketch.holes if not h.name.startswith("offset")],
            template=lambda assignment, params: sketch.template(
                {**assignment, "offset_a": 0, "offset_b": 0}, params
            ),
            spec=sketch.spec,
        )
        result = forced.solve([{"L": 4}, {"L": 6}], find_all=True)
        assert not result.found

    def test_solution_generalises_to_unseen_sizes(self):
        result = synthesize_grid_ie(lengths=(4, 6))
        sol = result.first
        sketch = grid_ie_sketch()
        assert sketch.check(sol, [{"L": 12}, {"L": 16}])

    def test_search_space_size(self):
        assert sycamore_ie_sketch().search_space_size() == 2 * 2 * 3 * 3

    def test_explored_counter(self):
        result = synthesize_sycamore_ie(lengths=(4,))
        assert 1 <= result.explored <= sycamore_ie_sketch().search_space_size()

    def test_duplicate_hole_names_rejected(self):
        with pytest.raises(ValueError):
            Sketch("bad", [Hole("x", 0, 1), Hole("x", 0, 1)], lambda a, p: None, lambda a, p: True)

    def test_solver_requires_parameters(self):
        with pytest.raises(ValueError):
            sycamore_ie_sketch().solve([])

    def test_timeout(self):
        slow = Sketch(
            name="slow",
            holes=[Hole("a", 0, 50), Hole("b", 0, 50), Hole("c", 0, 50)],
            template=lambda assignment, params: sum(
                i for i in range(20000)
            ),  # busy work per candidate
            spec=lambda artifact, params: False,
        )
        with pytest.raises(SynthesisTimeout):
            slow.solve([{"L": 4}], timeout_s=0.05)
