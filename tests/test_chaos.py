"""Tests for the deterministic fault-injection harness (repro.eval.chaos)."""

import pytest

from repro.eval import chaos


class TestDirectiveParsing:
    def test_single_directive(self):
        cfg = chaos.ChaosConfig.from_spec("kill-worker@worker=w0,cell=1")
        assert len(cfg.directives) == 1
        d = cfg.directives[0]
        assert d.kind == "kill-worker"
        assert d.params == {"worker": "w0", "cell": "1"}
        assert d.times == 1 and d.fired == 0

    def test_multiple_directives(self):
        cfg = chaos.ChaosConfig.from_spec(
            "kill-worker@worker=w0,cell=1;"
            "freeze-heartbeat@worker=w1,cell=2;"
            "stall@worker=w1,cell=2,s=1.2"
        )
        assert [d.kind for d in cfg.directives] == [
            "kill-worker", "freeze-heartbeat", "stall",
        ]

    def test_empty_spec_is_falsy(self):
        assert not chaos.ChaosConfig.from_spec("")
        assert not chaos.ChaosConfig.from_spec(" ; ; ")
        assert chaos.ChaosConfig.from_spec("stall@s=1")

    def test_unknown_kind_raises_at_parse_time(self):
        # A typo'd spec that silently injects nothing would "pass" every test.
        with pytest.raises(ValueError, match="unknown chaos directive kind"):
            chaos.ChaosConfig.from_spec("kill-wroker@worker=w0")

    def test_malformed_parameter_raises(self):
        with pytest.raises(ValueError, match="key=value"):
            chaos.ChaosConfig.from_spec("stall@nonsense")

    def test_times_budget_parsed(self):
        cfg = chaos.ChaosConfig.from_spec("drop-response@path=/result,times=3")
        assert cfg.directives[0].times == 3

    def test_describe_roundtrips_params(self):
        cfg = chaos.ChaosConfig.from_spec("stall@worker=w1,cell=2,s=1.2")
        assert cfg.directives[0].describe() == "stall@cell=2,s=1.2,worker=w1"


class TestFiring:
    def test_exact_match_required(self):
        cfg = chaos.ChaosConfig.from_spec("kill-worker@worker=w0,cell=1")
        assert cfg.fires("kill-worker", worker="w1", cell=1) is None
        assert cfg.fires("kill-worker", worker="w0", cell=0) is None
        assert cfg.fires("freeze-heartbeat", worker="w0", cell=1) is None
        assert cfg.fires("kill-worker", worker="w0", cell=1) is not None

    def test_context_values_compared_as_strings(self):
        cfg = chaos.ChaosConfig.from_spec("stall@cell=2,s=0.5")
        fired = cfg.fires("stall", worker="w9", cell=2)  # int context value
        assert fired is not None and fired["s"] == "0.5"

    def test_action_params_do_not_constrain_matching(self):
        cfg = chaos.ChaosConfig.from_spec("stall@worker=w0,s=1.0,times=2")
        assert cfg.fires("stall", worker="w0") is not None

    def test_budget_consumed(self):
        cfg = chaos.ChaosConfig.from_spec("drop-response@path=/lease,times=2")
        assert cfg.fires("drop-response", path="/lease") is not None
        assert cfg.fires("drop-response", path="/lease") is not None
        assert cfg.fires("drop-response", path="/lease") is None

    def test_default_budget_is_once(self):
        cfg = chaos.ChaosConfig.from_spec("kill-worker@worker=w0,cell=0")
        assert cfg.fires("kill-worker", worker="w0", cell=0) is not None
        assert cfg.fires("kill-worker", worker="w0", cell=0) is None

    def test_firing_is_deterministic_in_call_sequence(self):
        spec = "stall@worker=w0,s=0.1;stall@worker=w0,s=0.2"
        a = chaos.ChaosConfig.from_spec(spec)
        b = chaos.ChaosConfig.from_spec(spec)
        seq_a = [a.fires("stall", worker="w0")["s"] for _ in range(2)]
        seq_b = [b.fires("stall", worker="w0")["s"] for _ in range(2)]
        assert seq_a == seq_b == ["0.1", "0.2"]


class TestProcessConfig:
    def test_active_parses_env_once_and_reload_resets(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "stall@worker=w0,s=0.1")
        cfg = chaos.reload()
        assert cfg.fires("stall", worker="w0") is not None
        assert cfg.fires("stall", worker="w0") is None  # budget spent
        assert chaos.active() is cfg  # cached, counters preserved
        fresh = chaos.reload()  # what a spawned worker does on entry
        assert fresh is not cfg
        assert fresh.fires("stall", worker="w0") is not None
        monkeypatch.delenv(chaos.ENV_VAR)
        assert not chaos.reload()

    def test_unset_env_means_no_chaos(self, monkeypatch):
        monkeypatch.delenv(chaos.ENV_VAR, raising=False)
        assert not chaos.ChaosConfig.from_env()


class TestTearTail:
    def test_tears_to_exact_offset(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(b"0123456789")
        removed = chaos.tear_tail(path, 4)
        assert removed == 6
        assert path.read_bytes() == b"0123"

    def test_keep_bytes_out_of_range_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(b"abc")
        with pytest.raises(ValueError, match="keep_bytes"):
            chaos.tear_tail(path, 4)
        with pytest.raises(ValueError, match="keep_bytes"):
            chaos.tear_tail(path, -1)
        assert path.read_bytes() == b"abc"  # rejected tears change nothing
