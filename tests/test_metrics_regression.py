"""Pinned output metrics for representative evaluation cells.

Every optimisation in the mapper stack (delta-scored SABRE, counter-based
cascade bookkeeping, pending-set inter-unit interactions, topology-grouped
execution) is required to leave compiled circuits unchanged.  These values
were recorded from the PR-1 code (see BENCH_baseline_pr1.json) and must never
drift: a failure here means an "optimisation" changed an algorithm.
"""

import pytest

from repro.eval import run_cell

# (approach, kind, size) -> (depth, swap_count), recorded at PR 1.
PINNED = {
    ("sabre", "grid", 5): (187, 261),
    ("sabre", "grid", 7): (468, 976),
    ("sabre", "heavyhex", 6): (393, 702),
    ("ours", "heavyhex", 10): (247, 999),
    ("ours", "lattice", 10): (1507, 4515),
    ("lnn", "lattice", 10): (1149, 4949),
}


@pytest.mark.parametrize(
    "approach,kind,size", sorted(PINNED), ids=lambda v: str(v)
)
def test_cell_metrics_match_pr1_baseline(approach, kind, size):
    depth, swaps = PINNED[(approach, kind, size)]
    res = run_cell(approach, kind, size)
    assert res.ok and res.verified
    assert (res.depth, res.swap_count) == (depth, swaps)
