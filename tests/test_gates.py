"""Unit tests for repro.circuit.gates."""

import math

import pytest

from repro.circuit.gates import (
    CNOT,
    CPHASE,
    H,
    RZ,
    SWAP,
    Gate,
    GateKind,
    Op,
    count_kinds,
    expand_to_cnot,
    qft_angle,
)


class TestQftAngle:
    def test_adjacent_pair_is_pi_over_two(self):
        assert qft_angle(0, 1) == pytest.approx(math.pi / 2)

    def test_distance_two_is_pi_over_four(self):
        assert qft_angle(0, 2) == pytest.approx(math.pi / 4)

    def test_symmetric_in_arguments(self):
        assert qft_angle(3, 7) == pytest.approx(qft_angle(7, 3))

    def test_depends_only_on_distance(self):
        assert qft_angle(2, 5) == pytest.approx(qft_angle(10, 13))

    def test_same_qubit_rejected(self):
        with pytest.raises(ValueError):
            qft_angle(4, 4)

    @pytest.mark.parametrize("d", range(1, 12))
    def test_halves_with_each_extra_distance(self, d):
        assert qft_angle(0, d) == pytest.approx(math.pi / 2 ** d)


class TestGateConstruction:
    def test_h_is_single_qubit(self):
        g = H(3)
        assert g.kind == GateKind.H
        assert g.qubits == (3,)
        assert g.is_single_qubit and not g.is_two_qubit

    def test_cphase_default_angle_is_qft_angle(self):
        g = CPHASE(1, 4)
        assert g.angle == pytest.approx(qft_angle(1, 4))

    def test_cphase_explicit_angle(self):
        g = CPHASE(0, 1, 0.25)
        assert g.angle == pytest.approx(0.25)

    def test_swap_has_no_angle(self):
        assert SWAP(0, 1).angle is None

    def test_cnot_order_preserved(self):
        g = CNOT(5, 2)
        assert g.qubits == (5, 2)

    def test_rz_requires_angle_field(self):
        g = RZ(2, 1.5)
        assert g.angle == pytest.approx(1.5)

    def test_two_qubit_gate_rejects_identical_qubits(self):
        with pytest.raises(ValueError):
            CPHASE(2, 2, 0.1)

    def test_single_qubit_gate_rejects_two_qubits(self):
        with pytest.raises(ValueError):
            Gate(GateKind.H, (0, 1))

    def test_two_qubit_gate_rejects_single_qubit(self):
        with pytest.raises(ValueError):
            Gate(GateKind.SWAP, (0,))

    def test_sorted_qubits(self):
        assert CPHASE(5, 2, 0.3).sorted_qubits() == (2, 5)

    def test_remap_through_mapping(self):
        g = CPHASE(0, 1, 0.5).on({0: 7, 1: 3})
        assert g.qubits == (7, 3)
        assert g.angle == pytest.approx(0.5)

    def test_gates_are_hashable_and_equal_by_value(self):
        assert H(1) == H(1)
        assert len({H(1), H(1), H(2)}) == 2


class TestOp:
    def test_op_records_physical_and_logical(self):
        op = Op(GateKind.CPHASE, (3, 4), (0, 1), 0.5)
        assert op.physical == (3, 4)
        assert op.logical == (0, 1)
        assert op.is_two_qubit and op.is_cphase and not op.is_swap

    def test_op_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Op(GateKind.H, (0,), (0, 1))

    def test_op_rejects_duplicate_physical(self):
        with pytest.raises(ValueError):
            Op(GateKind.SWAP, (2, 2), (0, 1))

    def test_as_gate_projects_to_logical(self):
        op = Op(GateKind.CPHASE, (9, 5), (2, 3), 0.25)
        g = op.as_gate()
        assert g.qubits == (2, 3)
        assert g.angle == pytest.approx(0.25)

    def test_swap_op_is_swap(self):
        assert Op(GateKind.SWAP, (0, 1), (1, 0)).is_swap


class TestExpandToCnot:
    def test_swap_expands_to_three_cnots(self):
        ops = expand_to_cnot(Op(GateKind.SWAP, (0, 1), (0, 1)))
        assert len(ops) == 3
        assert all(o.kind == GateKind.CNOT for o in ops)

    def test_cphase_expands_to_two_cnots_and_rotations(self):
        ops = expand_to_cnot(Op(GateKind.CPHASE, (0, 1), (0, 1), math.pi / 2))
        kinds = [o.kind for o in ops]
        assert kinds.count(GateKind.CNOT) == 2
        assert kinds.count(GateKind.RZ) == 3

    def test_single_qubit_ops_pass_through(self):
        op = Op(GateKind.H, (0,), (0,))
        assert expand_to_cnot(op) == [op]

    def test_expansion_preserves_tag(self):
        ops = expand_to_cnot(Op(GateKind.SWAP, (0, 1), (0, 1), tag="unit-swap"))
        assert all(o.tag == "unit-swap" for o in ops)


class TestCountKinds:
    def test_counts_by_kind(self):
        ops = [
            Op(GateKind.H, (0,), (0,)),
            Op(GateKind.SWAP, (0, 1), (0, 1)),
            Op(GateKind.SWAP, (1, 2), (1, 2)),
        ]
        counts = count_kinds(ops)
        assert counts == {GateKind.H: 1, GateKind.SWAP: 2}

    def test_empty_sequence(self):
        assert count_kinds([]) == {}
