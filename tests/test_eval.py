"""Tests for the evaluation harness (runners, metrics, experiments, tables)."""

import pytest

from repro.arch import CaterpillarTopology, LatticeSurgeryTopology, SycamoreTopology
from repro.eval import (
    CompilationResult,
    architecture_label,
    format_results,
    format_series,
    format_table,
    make_architecture,
    run_cell,
    run_specs,
)
from repro.eval.experiments import (  # repro-lint: ignore[deprecated-api] -- shim-contract import
    QUICK,
    Profile,
    experiment_figure27_sabre_randomness,
    specs_figure27,
    specs_linearity,
    specs_relaxed_vs_strict,
)


class TestMakeArchitecture:
    def test_sycamore(self):
        topo = make_architecture("sycamore", 4)
        assert isinstance(topo, SycamoreTopology) and topo.num_qubits == 16

    def test_heavyhex(self):
        topo = make_architecture("heavyhex", 4)
        assert isinstance(topo, CaterpillarTopology) and topo.num_qubits == 20

    def test_lattice(self):
        topo = make_architecture("lattice", 5)
        assert isinstance(topo, LatticeSurgeryTopology) and topo.num_qubits == 25

    def test_lnn_and_grid(self):
        assert make_architecture("lnn", 7).num_qubits == 7
        assert make_architecture("grid", 3).num_qubits == 9

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_architecture("torus", 4)

    def test_labels(self):
        assert architecture_label("sycamore", 6) == "6*6 Sycamore"
        assert architecture_label("heavyhex", 4) == "Heavy-hex 4*5"
        assert "Lattice" in architecture_label("lattice", 10)


class TestRunCell:
    def test_ours_on_heavyhex(self):
        res = run_cell("ours", "heavyhex", 2)
        assert res.ok and res.verified
        assert res.num_qubits == 10
        assert res.depth > 0 and res.swap_count > 0
        assert res.cphase_count == 45

    def test_sabre_on_sycamore(self):
        res = run_cell("sabre", "sycamore", 2)
        assert res.ok and res.verified

    def test_skip_above_cap(self):
        res = run_cell("sabre", "lattice", 10, max_qubits=50)
        assert res.status == "skipped"
        assert res.depth is None

    def test_satmap_timeout_reported(self):
        res = run_cell("satmap", "sycamore", 4, timeout_s=0.2)
        assert res.status == "timeout"

    def test_greedy_and_lnn_approaches(self):
        assert run_cell("greedy", "grid", 3).ok
        assert run_cell("lnn", "lattice", 3).ok

    def test_unknown_approach(self):
        with pytest.raises(ValueError):
            run_cell("magic", "grid", 3)

    def test_depth_per_qubit(self):
        res = run_cell("ours", "heavyhex", 3)
        assert 3 <= res.depth_per_qubit() <= 7


class TestExperiments:
    def test_figure27_produces_one_row_per_seed(self):
        rows = run_specs(specs_figure27(seeds=(0, 1, 2), m=2))
        assert len(rows) == 3
        assert all(r.verified for r in rows)

    def test_experiment_shim_warns_and_delegates(self):
        # the retired experiment_* surface: one contract test for the lot
        with pytest.warns(DeprecationWarning, match="fig27"):
            rows = experiment_figure27_sabre_randomness(seeds=(0,))  # repro-lint: ignore[deprecated-api]
        assert len(rows) == 1 and rows[0].verified

    def test_relaxed_vs_strict_shows_the_gap(self):
        rows = run_specs(specs_relaxed_vs_strict(sycamore_m=(4,), lattice_m=()))
        relaxed = [r for r in rows if r.approach == "ours-relaxed-ie"][0]
        strict = [r for r in rows if r.approach == "ours-strict-ie"][0]
        assert strict.depth > relaxed.depth

    def test_linearity_experiment_depth_ratio(self):
        prof = Profile(
            name="tiny",
            table1_sycamore=(),
            table1_heavyhex=(),
            table1_lattice=(),
            fig17_groups=(),
            fig18_m=(),
            fig19_m=(),
            sabre_max_qubits=0,
            satmap_max_qubits=0,
            satmap_timeout_s=1.0,
            linearity_sizes=(2, 4),
        )
        rows = run_specs(specs_linearity(prof))
        assert rows
        for r in rows:
            assert r.ok
            assert r.depth_per_qubit() < 25


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows, ["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_empty(self):
        assert format_table([], ["a"]) == "(no rows)"

    def test_format_results(self):
        res = [
            CompilationResult("ours", "X", 10, depth=50, swap_count=40, compile_time_s=0.1),
            CompilationResult("sabre", "X", 10, status="timeout"),
        ]
        text = format_results(res)
        assert "ours" in text and "timeout" in text

    def test_format_series_groups_by_approach(self):
        res = [
            CompilationResult("ours", "X", 10, depth=50),
            CompilationResult("ours", "X", 20, depth=90),
            CompilationResult("sabre", "X", 10, depth=80),
        ]
        text = format_series(res, "depth")
        assert "ours" in text and "10:50" in text and "20:90" in text
