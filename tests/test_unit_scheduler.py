"""Tests for the unit-level scheduler (Fig. 14 replay)."""

import pytest

from repro.core import UnitLevelScheduler


class Recorder:
    """Mock primitives that record the order of unit-level operations."""

    def __init__(self, num_units):
        self.num_units = num_units
        self.log = []
        # slot -> logical unit, mirrors what the scheduler should maintain
        self.slots = list(range(num_units))

    def ia(self, slot):
        self.log.append(("ia", self.slots[slot]))
        return {"fallback_swaps": 0}

    def ie(self, a, b):
        ua, ub = sorted((self.slots[a], self.slots[b]))
        self.log.append(("ie", ua, ub))
        return {"fallback_swaps": 0}

    def unit_swap(self, a, b):
        self.log.append(("swap", a, b))
        self.slots[a], self.slots[b] = self.slots[b], self.slots[a]


class TestUnitLevelScheduler:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 6, 9])
    def test_each_unit_pair_interacts_exactly_once(self, k):
        rec = Recorder(k)
        sched = UnitLevelScheduler(k, rec.ia, rec.ie, rec.unit_swap)
        stats = sched.run()
        ies = [e for e in rec.log if e[0] == "ie"]
        assert len(ies) == k * (k - 1) // 2
        assert len(set(ies)) == len(ies)
        assert stats["ie_calls"] == len(ies)

    @pytest.mark.parametrize("k", [1, 2, 4, 7])
    def test_each_unit_gets_exactly_one_ia(self, k):
        rec = Recorder(k)
        UnitLevelScheduler(k, rec.ia, rec.ie, rec.unit_swap).run()
        ias = [e[1] for e in rec.log if e[0] == "ia"]
        assert sorted(ias) == list(range(k))

    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_unit_level_type2_dependence(self, k):
        """IA(U_i) precedes IE(U_i, U_j) which precedes IA(U_j), for i < j."""

        rec = Recorder(k)
        UnitLevelScheduler(k, rec.ia, rec.ie, rec.unit_swap).run()
        ia_time = {}
        ie_time = {}
        for t, entry in enumerate(rec.log):
            if entry[0] == "ia":
                ia_time[entry[1]] = t
            elif entry[0] == "ie":
                ie_time[(entry[1], entry[2])] = t
        for (i, j), t in ie_time.items():
            assert ia_time[i] < t < ia_time[j]

    def test_unit_swaps_only_between_adjacent_slots(self):
        rec = Recorder(6)
        UnitLevelScheduler(6, rec.ia, rec.ie, rec.unit_swap).run()
        for entry in rec.log:
            if entry[0] == "swap":
                assert abs(entry[1] - entry[2]) == 1

    def test_ie_only_between_adjacent_slots(self):
        k = 5
        rec = Recorder(k)

        calls = []

        def ie(a, b):
            calls.append((a, b))
            return rec.ie(a, b)

        UnitLevelScheduler(k, rec.ia, ie, rec.unit_swap).run()
        for a, b in calls:
            assert abs(a - b) == 1

    def test_single_unit_only_runs_ia(self):
        rec = Recorder(1)
        stats = UnitLevelScheduler(1, rec.ia, rec.ie, rec.unit_swap).run()
        assert rec.log == [("ia", 0)]
        assert stats["unit_swaps"] == 0

    def test_fallback_counters_propagate(self):
        def ia(slot):
            return {"fallback_swaps": 2}

        def ie(a, b):
            return {"fallback_swaps": 1}

        def unit_swap(a, b):
            pass

        stats = UnitLevelScheduler(3, ia, ie, unit_swap).run()
        assert stats["ia_fallback_swaps"] == 2 * 3
        assert stats["ie_fallback_swaps"] == 1 * 3

    def test_rejects_zero_units(self):
        with pytest.raises(ValueError):
            UnitLevelScheduler(0, lambda s: None, lambda a, b: None, lambda a, b: None)
