"""End-to-end integration tests across mappers, baselines and the verifier."""

import pytest

from helpers import assert_valid_qft
from repro.arch import (
    CaterpillarTopology,
    GridTopology,
    LatticeSurgeryTopology,
    LNNTopology,
    SycamoreTopology,
)
import repro
from repro.baselines import LNNPathMapper, SabreMapper, SatmapMapper
from repro.core import GreedyRouterMapper
from repro.verify import (
    circuit_unitary,
    mapped_events_unitary,
    unitaries_equal_up_to_phase,
)
from repro.circuit import qft_circuit


def _qft(topo):
    """The paper's mapper via the supported entry point (ex-compile_qft)."""

    return repro.compile(
        workload="qft", architecture=topo, approach="ours", verify=False
    ).mapped


class TestAllApproachesAgreeOnTheUnitary:
    """Every mapper -- ours and every baseline -- must implement the same
    unitary on the same small instance."""

    def test_grid_2x3_all_approaches(self):
        topo = GridTopology(2, 3)
        n = topo.num_qubits
        reference = circuit_unitary(qft_circuit(n))
        mappers = [
            _qft(topo),
            SabreMapper(topo, seed=1).map_qft(),
            GreedyRouterMapper(topo).map_qft(),
            LNNPathMapper(topo).map_qft(),
            SatmapMapper(topo, timeout_s=120).map_qft(),
        ]
        for mapped in mappers:
            u = mapped_events_unitary(n, mapped.logical_gate_events())
            assert unitaries_equal_up_to_phase(u, reference), mapped.name

    def test_lnn_6_ours_vs_sabre(self):
        topo = LNNTopology(6)
        reference = circuit_unitary(qft_circuit(6))
        for mapped in (_qft(topo), SabreMapper(topo, seed=5).map_qft()):
            u = mapped_events_unitary(6, mapped.logical_gate_events())
            assert unitaries_equal_up_to_phase(u, reference)


class TestPaperHeadlineClaims:
    """Qualitative checks of the evaluation's main claims at reduced scale."""

    def test_linear_depth_on_all_three_architectures(self):
        for topo, bound in (
            (CaterpillarTopology.regular_groups(12), 7),   # ~5N-6N
            (SycamoreTopology(8), 12),                      # ~7N (+ slack)
            (LatticeSurgeryTopology(8), 20),                # ~5N in the paper; larger constant here
        ):
            mapped = _qft(topo)
            n = topo.num_qubits
            assert mapped.depth() <= bound * n + 40, topo.name

    def test_ours_beats_sabre_on_depth_at_moderate_scale(self):
        for topo in (
            CaterpillarTopology.regular_groups(6),
            SycamoreTopology(6),
            LatticeSurgeryTopology(6),
        ):
            ours = _qft(topo)
            sabre = SabreMapper(topo, seed=0).map_qft()
            assert ours.depth() < sabre.depth(), topo.name

    def test_ours_beats_sabre_on_swaps_on_lattice_at_scale(self):
        topo = LatticeSurgeryTopology(8)
        ours = _qft(topo)
        sabre = SabreMapper(topo, seed=0).map_qft()
        assert ours.swap_count() < sabre.swap_count()

    def test_no_recompilation_needed_as_size_changes(self):
        """The construction is analytical: compile time stays tiny and does
        not explode with the qubit count (Section 7.3)."""

        import time

        times = {}
        for groups in (4, 16):
            topo = CaterpillarTopology.regular_groups(groups)
            start = time.perf_counter()
            _qft(topo)
            times[groups] = time.perf_counter() - start
        assert times[16] < 10.0

    def test_swap_count_scales_quadratically_not_worse(self):
        small = _qft(CaterpillarTopology.regular_groups(4))
        large = _qft(CaterpillarTopology.regular_groups(8))
        ratio = large.swap_count() / small.swap_count()
        assert ratio < 6  # doubling N should ~4x the SWAPs, never much more


class TestCrossArchitectureConsistency:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: LNNTopology(10),
            lambda: CaterpillarTopology.regular_groups(3),
            lambda: SycamoreTopology(4),
            lambda: LatticeSurgeryTopology(4),
            lambda: GridTopology(4, 4),
        ],
        ids=["lnn", "heavyhex", "sycamore", "lattice", "grid"],
    )
    def test_full_pipeline_structure(self, factory):
        topo = factory()
        mapped = _qft(topo)
        assert_valid_qft(mapped, topo.num_qubits)
        n = topo.num_qubits
        assert mapped.cphase_count() == n * (n - 1) // 2
        assert mapped.gate_counts()["h"] == n
        # the mapped circuit never uses more physical qubits than the device
        used = {p for op in mapped.ops for p in op.physical}
        assert used <= set(range(topo.num_qubits))

    @pytest.mark.parametrize("groups", [2, 3])
    def test_heavy_hex_and_sabre_have_same_gate_totals(self, groups):
        topo = CaterpillarTopology.regular_groups(groups)
        ours = _qft(topo)
        sabre = SabreMapper(topo, seed=0).map_qft()
        assert ours.cphase_count() == sabre.cphase_count()
        assert ours.gate_counts()["h"] == sabre.gate_counts()["h"]
