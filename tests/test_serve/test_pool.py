"""The warm worker pool: prewarmed batches, crash recovery, clean drain."""

from __future__ import annotations

import queue
import threading

import pytest

from repro.serve import (
    CompileRequest,
    PoolShutdown,
    WarmWorkerPool,
    execute_request,
)


class Collector:
    """Thread-safe sink for pool results."""

    def __init__(self) -> None:
        self.results: "queue.Queue" = queue.Queue()

    def __call__(self, batch_id, rows, error) -> None:
        self.results.put((batch_id, rows, error))

    def next(self, timeout_s: float = 120.0):
        return self.results.get(timeout=timeout_s)


def _request(seed: int, size: int = 4) -> CompileRequest:
    return CompileRequest(
        workload="qft",
        architecture="grid",
        size=size,
        approach="sabre",
        options={"seed": seed},
    ).normalized()


@pytest.fixture
def pool_factory():
    pools = []

    def _make(workers: int = 1, **kwargs) -> tuple:
        sink = Collector()
        pool = WarmWorkerPool(
            workers, on_result=sink, prewarm=(("grid", 4),), **kwargs
        )
        pools.append(pool)
        assert pool.wait_ready(120.0)
        return pool, sink

    yield _make
    for pool in pools:
        pool.close(drain=False, timeout_s=5.0)


def test_pool_computes_batches_in_order(pool_factory):
    pool, sink = pool_factory(workers=1)
    requests = [_request(seed) for seed in (1, 2, 3)]
    batch_id = pool.submit(requests)
    got_id, rows, error = sink.next()
    assert got_id == batch_id and error is None
    assert [row["status"] for row in rows] == ["ok"] * 3
    # responses arrive in request order, bit-equal to in-process execution
    for row, request in zip(rows, requests):
        serial = execute_request(request).to_dict()
        for record in (row, serial):
            record.pop("compile_time_s")
            record.get("extra", {}).pop("kernel", None)
        assert row == serial


def test_pool_drain_waits_for_inflight(pool_factory):
    pool, sink = pool_factory(workers=1)
    pool.submit([_request(9)])
    assert pool.drain(timeout_s=120.0)
    assert sink.results.qsize() == 1
    assert pool.stats()["inflight_batches"] == 0


def test_pool_respawns_killed_worker_and_reassigns(pool_factory, monkeypatch):
    """A worker SIGKILLed mid-batch costs a respawn, never a lost batch."""

    monkeypatch.setenv("REPRO_CHAOS", "kill-worker@worker=w0,cell=1")
    pool, sink = pool_factory(workers=1)
    batch_id = pool.submit([_request(5)])
    got_id, rows, error = sink.next()
    assert got_id == batch_id and error is None
    assert rows[0]["status"] == "ok"
    stats = pool.stats()
    assert stats["respawns"] >= 1
    assert stats["reassigned_batches"] >= 1


def test_pool_rejects_after_close(pool_factory):
    pool, _ = pool_factory(workers=1)
    pool.close(drain=True, timeout_s=30.0)
    with pytest.raises(PoolShutdown):
        pool.submit([_request(1)])


def test_pool_spreads_load_across_workers(pool_factory):
    pool, sink = pool_factory(workers=2)
    ids = [pool.submit([_request(seed)]) for seed in (1, 2)]
    with pool._lock:
        owners = {pool._assigned[batch_id][0] for batch_id in ids if batch_id in pool._assigned}
    for _ in ids:
        sink.next()
    # both batches were in flight at submit time; least-loaded routing must
    # have put them on different workers
    assert len(owners) == 2 or pool.stats()["inflight_batches"] == 0
