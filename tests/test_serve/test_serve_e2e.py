"""The served process end to end: warm latency, chaos recovery, drain."""

from __future__ import annotations

import statistics
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve import ServeClient, ServeRequestError

REPO_ROOT = Path(__file__).resolve().parents[2]


def _client(handle, **kwargs) -> ServeClient:
    return ServeClient(handle.url, **kwargs)


def test_warm_worker_beats_cold_process(serve_subprocess):
    """Prewarmed serving must beat paying the cold-start on every compile."""

    handle = serve_subprocess("--workers", "1", "--prewarm", "grid:4")
    client = _client(handle)
    assert client.health()["status"] == "ok"

    warm_wall = []
    for seed in (11, 12, 13):  # distinct seeds: no LRU hits, real compiles
        t0 = time.perf_counter()
        resp = client.compile(
            workload="qft", architecture="grid", size=4,
            approach="sabre", seed=seed,
        )
        warm_wall.append(time.perf_counter() - t0)
        assert resp.ok and resp.cache is None

    t0 = time.perf_counter()
    cold = subprocess.run(
        [
            sys.executable,
            "-c",
            "import repro; repro.compile(workload='qft', architecture='grid',"
            " size=4, approach='sabre', seed=11)",
        ],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        check=True,
        capture_output=True,
    )
    cold_wall = time.perf_counter() - t0
    assert cold.returncode == 0

    warm_p50 = statistics.median(warm_wall)
    # the cold path pays interpreter boot + imports + topology construction
    # on every compile; the warm pool paid them once at startup
    assert warm_p50 < cold_wall, (warm_wall, cold_wall)


def test_chaos_killed_worker_never_surfaces_500(serve_subprocess):
    """SIGKILLing a worker mid-request respawns + re-dispatches, not 500."""

    handle = serve_subprocess(
        "--workers", "1", "--prewarm", "grid:4",
        chaos="kill-worker@worker=w0,cell=1",
    )
    client = _client(handle, timeout_s=120.0)
    resp = client.compile(
        workload="qft", architecture="grid", size=4, approach="sabre", seed=7
    )
    assert resp.ok and resp.status == "ok"
    stats = client.stats()
    assert stats["pool"]["respawns"] >= 1
    assert stats["pool_failures"] == 0


def test_sigterm_drains_and_exits_zero(serve_subprocess):
    handle = serve_subprocess("--workers", "1", "--prewarm", "grid:4")
    client = _client(handle)
    resp = client.compile(architecture="grid", size=4, approach="sabre", seed=1)
    assert resp.ok
    assert handle.terminate() == 0
    tail = handle.proc.stdout.read()
    assert "drained and stopped" in tail


def test_bad_request_surfaces_typed_client_error(serve_subprocess):
    handle = serve_subprocess("--workers", "1")
    client = _client(handle)
    with pytest.raises(ServeRequestError, match="did you mean"):
        client.compile(architecture="gird", size=4)
    # a rejected request must not poison the server
    assert client.health()["status"] == "ok"


def test_lru_hit_over_the_wire(serve_subprocess):
    handle = serve_subprocess("--workers", "1", "--prewarm", "grid:4")
    client = _client(handle)
    first = client.compile(architecture="grid", size=4, approach="sabre", seed=2)
    second = client.compile(architecture="grid", size=4, approach="sabre", seed=2)
    assert first.cache is None and second.cache == "lru"
    assert first.metrics == second.metrics
