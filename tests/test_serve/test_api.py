"""The versioned request/response schema: strict, shared, key-compatible."""

from __future__ import annotations

import dataclasses
import inspect
import json

import pytest

import repro
from repro.eval.cache import ResultCache, cell_cache_key
from repro.registry import UnknownNameError
from repro.serve import (
    API_VERSION,
    ApiError,
    CompileRequest,
    CompileResponse,
    execute_request,
)


# ---------------------------------------------------------------------------
# Round trip + strictness
# ---------------------------------------------------------------------------


def test_request_json_round_trip():
    req = CompileRequest(
        workload="qaoa",
        architecture="grid",
        size=4,
        approach="sabre",
        workload_params={"seed": 5},
        options={"seed": 2},
        timeout_s=30.0,
    )
    back = CompileRequest.from_json(req.to_json())
    # the wire carries verify as its policy string; everything else verbatim
    assert back == dataclasses.replace(req, verify=req.verify_policy())


def test_unknown_field_rejected_with_suggestion():
    with pytest.raises(ApiError, match="did you mean 'architecture'"):
        CompileRequest.from_json(json.dumps({"archtecture": "grid"}))


def test_wrong_types_rejected():
    with pytest.raises(ApiError, match="size"):
        CompileRequest.from_json(json.dumps({"size": "five"}))
    with pytest.raises(ApiError, match="boolean"):
        CompileRequest.from_json(json.dumps({"size": True}))
    with pytest.raises(ApiError, match="not valid JSON"):
        CompileRequest.from_json(b"{nope")
    with pytest.raises(ApiError, match="JSON object"):
        CompileRequest.from_json(json.dumps([1, 2]))


def test_api_version_pinned():
    with pytest.raises(ApiError, match="api_version"):
        CompileRequest.from_json(json.dumps({"api_version": "0"}))
    with pytest.raises(ApiError, match="api_version"):
        CompileResponse.from_json(
            json.dumps({"api_version": "99", "status": "ok"})
        )
    assert CompileRequest().api_version == API_VERSION


def test_verify_policy_normalization():
    assert CompileRequest(verify=True).verify_policy() == "full"
    assert CompileRequest(verify=False).verify_policy() == "off"
    assert CompileRequest(verify="sample").verify_policy() == "sample"
    with pytest.raises(ApiError, match="verify"):
        CompileRequest(verify="sometimes").verify_policy()


def test_response_round_trip():
    row = repro.compile(
        workload="qft", architecture="grid", size=3, approach="ours"
    ).metrics()
    resp = CompileResponse.from_result(row, cache="lru")
    back = CompileResponse.from_json(resp.to_json())
    assert back == resp
    assert back.ok and back.cache == "lru"
    assert back.metrics == row.to_dict()


# ---------------------------------------------------------------------------
# Registry normalization
# ---------------------------------------------------------------------------


def test_normalized_resolves_synonyms_and_validates():
    req = CompileRequest(architecture="Line", size=5, approach="our-approach")
    norm = req.normalized()
    assert norm.architecture == "lnn"
    assert norm.approach == "ours"
    assert norm.verify == "full"
    assert norm.group_key() == ("lnn", 5)


def test_normalized_rejects_unknown_names_with_hints():
    with pytest.raises(UnknownNameError, match="did you mean"):
        CompileRequest(architecture="gird", size=4).normalized()
    with pytest.raises(ValueError, match="unknown option"):
        CompileRequest(
            architecture="grid", size=4, approach="sabre", options={"sede": 1}
        ).normalized()
    with pytest.raises(ApiError, match="size is required"):
        CompileRequest(architecture="grid").normalized()


# ---------------------------------------------------------------------------
# Shared-verbatim contract with repro.compile
# ---------------------------------------------------------------------------


def test_fields_mirror_compile_signature():
    """Every repro.compile parameter is a CompileRequest field, verbatim."""

    params = inspect.signature(repro.compile).parameters
    compile_names = {
        name for name, p in params.items() if p.kind is not p.VAR_KEYWORD
    }
    envelope = {"options", "api_version"}  # wire-only: **opts + the pin
    assert set(CompileRequest._FIELDS) - envelope == compile_names


def test_to_compile_kwargs_reproduces_library_result():
    req = CompileRequest(
        workload="qft",
        architecture="grid",
        size=4,
        approach="sabre",
        options={"seed": 3},
    ).normalized()
    via_request = repro.compile(**req.to_compile_kwargs()).metrics().to_dict()
    direct = repro.compile(
        workload="qft", architecture="grid", size=4, approach="sabre", seed=3
    ).metrics().to_dict()
    for row in (via_request, direct):
        row.pop("compile_time_s")
    assert via_request == direct


def test_execute_request_bit_equal_to_serial_compile():
    req = CompileRequest(
        workload="qft", architecture="grid", size=4,
        approach="sabre", options={"seed": 1},
    ).normalized()
    served = execute_request(req).to_dict()
    serial = repro.compile(
        workload="qft", architecture="grid", size=4, approach="sabre", seed=1
    ).metrics().to_dict()
    serial["architecture"] = repro.architecture_label("grid", 4)
    for row in (served, serial):
        row.pop("compile_time_s")
        row.get("extra", {}).pop("kernel", None)
    assert served == serial


def test_execute_request_honors_num_qubits():
    req = CompileRequest(
        workload="qft", architecture="grid", size=4,
        approach="sabre", num_qubits=9, options={"seed": 1},
    ).normalized()
    row = execute_request(req)
    assert row.status == "ok"
    assert row.num_qubits == 9


# ---------------------------------------------------------------------------
# Cache-key compatibility with the batch harness
# ---------------------------------------------------------------------------


def test_cache_key_matches_result_cache_key(tmp_path):
    """A full-device request derives the exact key a batch sweep writes."""

    cache = ResultCache(tmp_path / "cache")
    req = CompileRequest(
        workload="qft", architecture="grid", size=4,
        approach="sabre", options={"seed": 2}, timeout_s=60.0,
    ).normalized()
    sweep_key = cache.key(
        "sabre",
        "grid",
        4,
        kwargs=(("seed", 2),),
        timeout_s=60.0,
        workload="qft",
        verify="full",
    )
    assert req.cache_key() == sweep_key


def test_cache_key_excludes_engine_kwargs():
    base = CompileRequest(
        architecture="grid", size=4, approach="sabre", options={"seed": 2}
    ).normalized()
    forked = CompileRequest(
        architecture="grid", size=4, approach="sabre",
        options={"seed": 2, "kernel": "python"},
    ).normalized()
    assert base.cache_key() == forked.cache_key()


def test_cache_key_forks_on_num_qubits():
    full = CompileRequest(architecture="grid", size=4).normalized()
    partial = CompileRequest(architecture="grid", size=4, num_qubits=9).normalized()
    assert full.cache_key() != partial.cache_key()


def test_cell_cache_key_defaults_to_current_code_version():
    key = cell_cache_key("sabre", "grid", 4, kwargs=(("seed", 2),))
    pinned = cell_cache_key("sabre", "grid", 4, kwargs=(("seed", 2),), code="deadbeef")
    assert key != pinned
