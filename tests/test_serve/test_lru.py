"""The in-memory hot-set cache: recency eviction and counters."""

from repro.serve import LRUCache


def test_lru_evicts_least_recently_used():
    lru = LRUCache(2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1  # refresh a: b is now the eviction candidate
    lru.put("c", 3)
    assert "b" not in lru
    assert lru.get("a") == 1
    assert lru.get("c") == 3
    assert lru.evictions == 1


def test_lru_counts_hits_and_misses():
    lru = LRUCache(4)
    assert lru.get("missing") is None
    lru.put("k", "v")
    assert lru.get("k") == "v"
    stats = lru.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["size"] == 1


def test_lru_put_refreshes_existing_key():
    lru = LRUCache(2)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.put("a", 10)  # refresh + overwrite: b is the LRU entry
    lru.put("c", 3)
    assert "b" not in lru
    assert lru.get("a") == 10


def test_zero_capacity_disables_cache():
    lru = LRUCache(0)
    lru.put("a", 1)
    assert lru.get("a") is None
    assert len(lru) == 0
