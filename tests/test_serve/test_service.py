"""The asyncio service end to end (in-process): batching, caching, limits.

Each test spins up a real :class:`CompileService` (forked warm workers,
bound ephemeral socket) inside ``asyncio.run`` and talks to it over real
HTTP connections -- only the process boundary of ``python -m repro.serve``
is elided (covered by ``test_serve_e2e.py``).
"""

from __future__ import annotations

import asyncio

import repro
from repro.eval.cache import ResultCache
from repro.serve import CompileRequest, CompileService, ServeConfig, execute_request


def _payload(seed: int, *, architecture: str = "grid", size: int = 4, **extra):
    return {
        "workload": "qft",
        "architecture": architecture,
        "size": size,
        "approach": "sabre",
        "options": {"seed": seed},
        **extra,
    }


def run_service(config: ServeConfig, scenario):
    """Start a service, run ``scenario(service)``, always drain it."""

    async def main():
        service = CompileService(config)
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.stop()

    return asyncio.run(main())


def _strip_volatile(row: dict) -> dict:
    row = dict(row)
    row.pop("compile_time_s", None)
    row["extra"] = {
        k: v for k, v in row.get("extra", {}).items() if k != "kernel"
    }
    return row


# ---------------------------------------------------------------------------
# Batching
# ---------------------------------------------------------------------------


def test_batched_responses_bit_equal_to_serial_compile(http_post):
    """Concurrent requests coalesce by topology; results stay bit-equal."""

    payloads = [
        _payload(1),
        _payload(2),
        _payload(1, architecture="lnn", size=5),
        _payload(2, architecture="lnn", size=5),
    ]

    async def scenario(service):
        results = await asyncio.gather(
            *(http_post(service.port, "/v1/compile", p) for p in payloads)
        )
        return results, service.stats()

    config = ServeConfig(
        workers=1, batch_window_s=0.2, prewarm=(("grid", 4), ("lnn", 5))
    )
    results, stats = run_service(config, scenario)
    assert [status for status, _, _ in results] == [200] * 4
    # one batch per topology group: the four requests landed in the same
    # window, so the grouping logic must have coalesced them into two
    assert stats["batches"] == 2
    for payload, (_, body, _) in zip(payloads, results):
        serial = repro.compile(
            workload="qft",
            architecture=payload["architecture"],
            size=payload["size"],
            approach="sabre",
            **payload["options"],
        ).metrics().to_dict()
        serial["architecture"] = repro.architecture_label(
            payload["architecture"], payload["size"]
        )
        assert _strip_volatile(body["metrics"]) == _strip_volatile(serial)
        assert body["cache"] is None


def test_request_timeout_returns_typed_timeout_status(http_post):
    async def scenario(service):
        return await http_post(
            service.port, "/v1/compile", _payload(1, size=8, timeout_s=0.05)
        )

    status, body, _ = run_service(
        ServeConfig(workers=1, batch_window_s=0.01), scenario
    )
    assert status == 200
    assert body["status"] == "timeout"


# ---------------------------------------------------------------------------
# Caching
# ---------------------------------------------------------------------------


def test_lru_hit_and_eviction(http_post):
    async def scenario(service):
        first = await http_post(service.port, "/v1/compile", _payload(1))
        again = await http_post(service.port, "/v1/compile", _payload(1))
        other = await http_post(service.port, "/v1/compile", _payload(2))
        evicted = await http_post(service.port, "/v1/compile", _payload(1))
        return first, again, other, evicted, service.stats()

    config = ServeConfig(
        workers=1, batch_window_s=0.01, lru_size=1, prewarm=(("grid", 4),)
    )
    first, again, other, evicted, stats = run_service(config, scenario)
    assert first[1]["cache"] is None
    assert again[1]["cache"] == "lru"
    assert other[1]["cache"] is None  # computed; its insert evicts seed 1
    assert evicted[1]["cache"] is None  # capacity 1: had been evicted
    assert first[1]["metrics"] == again[1]["metrics"]
    assert stats["lru_hits"] == 1
    assert stats["lru"]["evictions"] >= 1


def test_store_backed_hits_survive_cold_lru(tmp_path, http_post):
    """--store DB serves results computed offline by the batch harness."""

    db = tmp_path / "serve.db"
    request = CompileRequest(**{
        k: v for k, v in _payload(3).items()
    }).normalized()
    cache = ResultCache(db)
    key = cache.key(
        request.approach,
        request.architecture,
        request.size,
        kwargs=request.identity_kwargs(),
        workload=request.workload,
        verify=request.verify_policy(),
    )
    offline_row = execute_request(request)
    cache.put(key, offline_row)
    cache.close()

    async def scenario(service):
        hit = await http_post(service.port, "/v1/compile", _payload(3))
        warmed = await http_post(service.port, "/v1/compile", _payload(3))
        return hit, warmed, service.stats()

    config = ServeConfig(
        workers=1, batch_window_s=0.01, store=str(db), prewarm=(("grid", 4),)
    )
    hit, warmed, stats = run_service(config, scenario)
    assert hit[0] == 200 and hit[1]["cache"] == "store"
    assert warmed[1]["cache"] == "lru"  # the store hit warmed the LRU
    assert stats["store_hits"] == 1
    assert stats["computed"] == 0  # nothing was compiled
    assert _strip_volatile(hit[1]["metrics"]) == _strip_volatile(
        offline_row.to_dict()
    )


# ---------------------------------------------------------------------------
# Backpressure and drain
# ---------------------------------------------------------------------------


def test_overload_returns_429_with_retry_after(http_post):
    """Admission beyond max_queue sheds load; accepted work still finishes."""

    async def scenario(service):
        queued = [
            asyncio.create_task(
                http_post(service.port, "/v1/compile", _payload(seed))
            )
            for seed in (1, 2)
        ]
        await asyncio.sleep(0.1)  # both are in the batching window's queue
        status, body, headers = await http_post(
            service.port, "/v1/compile", _payload(3)
        )
        accepted = await asyncio.gather(*queued)
        return status, body, headers, accepted

    config = ServeConfig(
        workers=1, batch_window_s=0.5, max_queue=2, prewarm=(("grid", 4),)
    )
    status, body, headers, accepted = run_service(config, scenario)
    assert status == 429
    assert "queue full" in body["error"]
    assert int(headers["retry-after"]) >= 1
    assert [s for s, _, _ in accepted] == [200, 200]


def test_draining_returns_503_with_retry_after(http_post):
    async def scenario(service):
        service._draining = True  # the window between SIGTERM and shutdown
        return await http_post(service.port, "/v1/compile", _payload(1))

    status, body, headers = run_service(
        ServeConfig(workers=1, batch_window_s=0.01), scenario
    )
    assert status == 503
    assert "draining" in body["error"]
    assert int(headers["retry-after"]) >= 1


def test_drain_answers_every_accepted_request(http_post):
    """stop() while requests sit in the queue: all are answered, none lost."""

    async def scenario(service):
        tasks = [
            asyncio.create_task(
                http_post(service.port, "/v1/compile", _payload(seed))
            )
            for seed in (1, 2, 3)
        ]
        await asyncio.sleep(0.1)  # accepted, still inside the batch window
        stopper = asyncio.create_task(service.stop())
        answered = await asyncio.gather(*tasks)
        await stopper
        return answered

    answered = run_service(
        ServeConfig(workers=1, batch_window_s=0.4, prewarm=(("grid", 4),)),
        scenario,
    )
    assert [status for status, _, _ in answered] == [200] * 3
    assert all(body["status"] == "ok" for _, body, _ in answered)


# ---------------------------------------------------------------------------
# Validation and endpoints
# ---------------------------------------------------------------------------


def test_bad_requests_rejected_400_with_hints(http_post):
    async def scenario(service):
        typo_field = await http_post(
            service.port, "/v1/compile", {"aproach": "sabre"}
        )
        typo_name = await http_post(
            service.port, "/v1/compile", _payload(1, architecture="gird")
        )
        bad_option = await http_post(
            service.port,
            "/v1/compile",
            {**_payload(1), "options": {"sede": 1}},
        )
        return typo_field, typo_name, bad_option, service.stats()

    typo_field, typo_name, bad_option, stats = run_service(
        ServeConfig(workers=1), scenario
    )
    assert typo_field[0] == 400
    assert "did you mean 'approach'" in typo_field[1]["error"]
    assert typo_name[0] == 400
    assert "did you mean" in typo_name[1]["error"]
    assert bad_option[0] == 400
    assert "unknown option" in bad_option[1]["error"]
    assert stats["rejected_400"] == 3


def test_health_and_stats_endpoints(http_post):
    async def scenario(service):
        reader, writer = await asyncio.open_connection("127.0.0.1", service.port)
        writer.write(b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await http_post(service.port, "/v1/compile", _payload(1))
        return raw, service.stats()

    raw, stats = run_service(
        ServeConfig(workers=1, prewarm=(("grid", 4),)), scenario
    )
    assert b"200 OK" in raw and b'"status": "ok"' in raw
    assert stats["requests"] == 1
    assert stats["pool"]["workers"] == 1
