"""Fixtures for the serve suite: subprocess servers and HTTP helpers."""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


class ServerHandle:
    """One ``python -m repro.serve`` subprocess and its discovered URL."""

    def __init__(self, proc: subprocess.Popen, url: str) -> None:
        self.proc = proc
        self.url = url

    def terminate(self, timeout_s: float = 30.0) -> int:
        """SIGTERM (graceful drain) and return the exit code."""

        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:  # pragma: no cover - bug guard
            self.proc.kill()
            raise


@pytest.fixture
def serve_subprocess():
    """Factory: start a real server subprocess, yield its handle, clean up."""

    started = []

    def _start(*extra_args: str, chaos: str = "", timeout_s: float = 120.0):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        if chaos:
            env["REPRO_CHAOS"] = chaos
        else:
            env.pop("REPRO_CHAOS", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0", *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        line = proc.stdout.readline()
        match = re.search(r"listening on (http://[\d.]+:\d+)", line)
        if not match:  # pragma: no cover - startup failure diagnostics
            proc.kill()
            raise RuntimeError(f"server failed to start: {line!r}")
        handle = ServerHandle(proc, match.group(1))
        started.append(handle)
        return handle

    yield _start
    for handle in started:
        if handle.proc.poll() is None:
            handle.proc.kill()
            handle.proc.wait(timeout=10)


@pytest.fixture
def http_post():
    """The raw async POST helper, as a fixture."""

    return post_json


async def post_json(port: int, path: str, payload: dict):
    """Raw async HTTP POST; returns (status, body dict, headers dict)."""

    import asyncio

    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(payload).encode()
    head = (
        f"POST {path} HTTP/1.1\r\nHost: localhost\r\n"
        f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n\r\n"
    )
    writer.write(head.encode() + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):  # pragma: no cover - teardown race
        pass
    header_blob, _, payload_blob = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, json.loads(payload_blob), headers
