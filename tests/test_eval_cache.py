"""Tests for the on-disk result cache (repro.eval.cache)."""

import json

import pytest

from repro.eval import CacheMergeConflict, CompilationResult, ResultCache, code_version
from repro.eval.executors import run_specs
from repro.eval.parallel import CellSpec


def _spec_key(cache, spec):
    return cache.key(
        spec.approach, spec.kind, spec.size, spec.kwargs, spec.rename, spec.timeout_s
    )


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("sabre", "grid", 3, (("seed", 1),))
        assert cache.get(key) is None
        res = CompilationResult(
            "sabre", "Grid 3*3", 9, depth=40, swap_count=22, compile_time_s=0.1,
            verified=True, extra={"mapper": "sabre", "seed": 1},
        )
        cache.put(key, res)
        got = cache.get(key)
        assert got is not None
        assert got.depth == 40 and got.swap_count == 22 and got.verified is True
        assert got.extra["cache"] == "hit"
        assert cache.stats() == {"hits": 1, "misses": 1}
        assert len(cache) == 1

    def test_key_depends_on_every_spec_component_and_code_version(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key("sabre", "grid", 3, (("seed", 0),))
        assert cache.key("ours", "grid", 3, (("seed", 0),)) != base
        assert cache.key("sabre", "lattice", 3, (("seed", 0),)) != base
        assert cache.key("sabre", "grid", 4, (("seed", 0),)) != base
        assert cache.key("sabre", "grid", 3, (("seed", 1),)) != base
        other_code = ResultCache(tmp_path, version="deadbeef")
        assert other_code.key("sabre", "grid", 3, (("seed", 0),)) != base

    def test_default_version_is_source_hash(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.version == code_version()
        assert len(cache.version) == 12

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("sabre", "grid", 2, ())
        cache.put(key, CompilationResult("sabre", "Grid 2*2", 4))
        (tmp_path / f"{key}.json").write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_stored_file_is_plain_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("ours", "heavyhex", 2, ())
        cache.put(key, CompilationResult("ours", "Heavy-hex 2*5", 10, depth=33))
        data = json.loads((tmp_path / f"{key}.json").read_text(encoding="utf-8"))
        assert data["approach"] == "ours" and data["depth"] == 33


class TestRunCellsWithCache:
    def test_second_sweep_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [
            CellSpec.make("sabre", "grid", 2, seed=s, rename=f"sabre-seed{s}")
            for s in range(3)
        ]
        cold = run_specs(specs, cache=cache)
        assert cache.stats()["hits"] == 0
        warm = run_specs(specs, cache=cache)
        assert cache.stats()["hits"] == 3
        assert [r.depth for r in warm] == [r.depth for r in cold]
        assert [r.approach for r in warm] == [f"sabre-seed{s}" for s in range(3)]
        assert all(r.extra.get("cache") == "hit" for r in warm)

    def test_rename_is_part_of_the_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        plain = CellSpec.make("sabre", "grid", 2, seed=0)
        renamed = CellSpec.make("sabre", "grid", 2, seed=0, rename="sabre-seed0")
        assert _spec_key(cache, plain) != _spec_key(cache, renamed)

    def test_timeout_results_are_not_cached(self, tmp_path):
        # a timeout depends on machine load, not on the spec -- caching it
        # would serve a one-off slow run forever
        cache = ResultCache(tmp_path)
        specs = [CellSpec.make("satmap", "sycamore", 4, timeout_s=0.01)]
        first = run_specs(specs, cache=cache)
        assert first[0].status == "timeout"
        assert len(cache) == 0
        run_specs(specs, cache=cache)
        assert cache.stats()["hits"] == 0  # recomputed, not served stale

    def test_version_change_invalidates(self, tmp_path):
        cache_v1 = ResultCache(tmp_path, version="v1")
        specs = [CellSpec.make("ours", "heavyhex", 2)]
        run_specs(specs, cache=cache_v1)
        cache_v2 = ResultCache(tmp_path, version="v2")
        run_specs(specs, cache=cache_v2)
        assert cache_v2.stats()["hits"] == 0
        assert len(cache_v2) == 2  # both versions stored side by side

    def test_timeout_budget_is_part_of_the_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        plain = CellSpec.make("satmap", "grid", 2)
        budgeted = CellSpec.make("satmap", "grid", 2, timeout_s=5.0)
        assert _spec_key(cache, plain) != _spec_key(cache, budgeted)


class TestCacheMerge:
    """Union of sharded sweep caches (ResultCache.merge / --cache-merge)."""

    def _sharded_caches(self, tmp_path):
        # two "machines" run disjoint slices of a seed sweep
        shard_a = ResultCache(tmp_path / "a")
        shard_b = ResultCache(tmp_path / "b")
        specs_a = [CellSpec.make("sabre", "grid", 2, seed=s) for s in (0, 1)]
        specs_b = [CellSpec.make("sabre", "grid", 2, seed=s) for s in (2, 3)]
        run_specs(specs_a, cache=shard_a)
        run_specs(specs_b, cache=shard_b)
        return shard_a, shard_b, specs_a + specs_b

    def test_merge_unions_disjoint_shards(self, tmp_path):
        shard_a, shard_b, all_specs = self._sharded_caches(tmp_path)
        merged = ResultCache(tmp_path / "merged")
        assert merged.merge(shard_a.root) == {
            "imported": 2,
            "skipped": 0,
            "invalid": 0,
        }
        assert merged.merge(shard_b.root) == {
            "imported": 2,
            "skipped": 0,
            "invalid": 0,
        }
        # the merged cache serves the whole sweep warm
        results = run_specs(all_specs, cache=merged)
        assert merged.stats() == {"hits": 4, "misses": 0}
        assert all(r.ok for r in results)

    def test_merge_skips_entries_already_present(self, tmp_path):
        shard_a, _, _ = self._sharded_caches(tmp_path)
        merged = ResultCache(tmp_path / "merged")
        merged.merge(shard_a.root)
        again = merged.merge(shard_a.root)
        assert again == {"imported": 0, "skipped": 2, "invalid": 0}

    def test_merge_counts_and_ignores_corrupt_entries(self, tmp_path):
        shard_a, _, _ = self._sharded_caches(tmp_path)
        (shard_a.root / ("0" * 24 + ".json")).write_text("{broken", encoding="utf-8")
        merged = ResultCache(tmp_path / "merged")
        stats = merged.merge(shard_a.root)
        assert stats["imported"] == 2 and stats["invalid"] == 1

    def test_merge_conflict_raises_instead_of_keeping_first(self, tmp_path):
        # Two caches storing *different metrics* under the same key means one
        # of them is corrupt; the merge must refuse, not pick by order.
        a = ResultCache(tmp_path / "a", version="v1")
        b = ResultCache(tmp_path / "b", version="v1")
        key = a.key("sabre", "grid", 2, ())
        a.put(key, CompilationResult("sabre", "Grid 2*2", 4, depth=9, swap_count=2))
        b.put(key, CompilationResult("sabre", "Grid 2*2", 4, depth=99, swap_count=2))
        dest = ResultCache(tmp_path / "dest", version="v1")
        dest.merge(a.root)
        with pytest.raises(CacheMergeConflict, match="depth"):
            dest.merge(b.root)

    def test_merge_tolerates_wall_clock_differences(self, tmp_path):
        # compile_time_s is machine/run-dependent, not part of the cell's
        # deterministic identity: two shards that both computed the same cell
        # must merge cleanly.
        a = ResultCache(tmp_path / "a", version="v1")
        b = ResultCache(tmp_path / "b", version="v1")
        key = a.key("sabre", "grid", 2, ())
        a.put(key, CompilationResult("sabre", "Grid 2*2", 4, depth=9, compile_time_s=0.5))
        b.put(key, CompilationResult("sabre", "Grid 2*2", 4, depth=9, compile_time_s=1.5))
        dest = ResultCache(tmp_path / "dest", version="v1")
        dest.merge(a.root)
        stats = dest.merge(b.root)
        assert stats == {"imported": 0, "skipped": 1, "invalid": 0}

    def test_merge_missing_directory_raises(self, tmp_path):
        cache = ResultCache(tmp_path / "dest")
        with pytest.raises(FileNotFoundError):
            cache.merge(tmp_path / "nope")

    def test_cli_cache_merge(self, tmp_path, capsys):
        from repro.eval.experiments import main

        shard_a, shard_b, all_specs = self._sharded_caches(tmp_path)
        dest = tmp_path / "merged"
        rc = main(
            [
                "--cache",
                str(dest),
                "--cache-merge",
                str(shard_a.root),
                str(shard_b.root),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 imported" in out
        merged = ResultCache(dest)
        run_specs(all_specs, cache=merged)
        assert merged.stats() == {"hits": 4, "misses": 0}

    def test_cli_cache_merge_requires_cache(self, tmp_path):
        from repro.eval.experiments import main

        with pytest.raises(SystemExit):
            main(["--cache-merge", str(tmp_path)])
