"""Tests for the declarative run API (repro.eval.runs / executors / journal)."""

import json
import pickle

import pytest

from repro.eval import (
    CellSpec,
    ExecutionContext,
    RunJournal,
    adhoc_plan,
    cell_key,
    execute,
    executor_names,
    experiment_names,
    get_executor,
    get_experiment,
    partition_cells,
    plan,
    run_cell,
    sample_verifies,
)
from repro.eval.cache import ResultCache
from repro.eval.experiments import QUICK, main
from repro.eval.metrics import CompilationResult
from repro.registry import UnknownNameError


def _metrics(results):
    return [
        (r.approach, r.architecture, r.status, r.depth, r.swap_count, r.verified)
        for r in results
    ]


# ---------------------------------------------------------------------------
# Experiment registry
# ---------------------------------------------------------------------------


class TestExperimentRegistry:
    def test_builtin_experiments_registered(self):
        names = experiment_names()
        for expected in (
            "table1", "fig17", "fig18", "fig19", "fig27",
            "relaxed", "partition", "linearity", "sweep",
        ):
            assert expected in names

    def test_synonyms_resolve(self):
        assert get_experiment("figure27").name == "fig27"
        assert get_experiment("t1").name == "table1"
        assert get_experiment("workload-sweep").name == "sweep"

    def test_unknown_experiment_suggests(self):
        with pytest.raises(UnknownNameError, match="did you mean"):
            plan("fig172")

    def test_entries_carry_figure_anchor(self):
        assert get_experiment("table1").figure == "Table 1"
        assert get_experiment("fig27").figure == "Fig. 27"

    def test_sweep_excluded_from_all(self):
        assert "sweep" not in experiment_names(in_all_only=True)
        assert not get_experiment("sweep").in_all

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            plan("fig17", workload="qaoa")

    def test_sweep_accepts_workload_option(self):
        p = plan("sweep", workload="qaoa")
        assert all(c.workload == "qaoa" for c in p.cells)

    def test_registry_direct_import_registers_builtins(self):
        # plan() must work without an explicit `import repro.eval.experiments`
        from repro.eval import runs

        assert runs.get_experiment("fig17").name == "fig17"


# ---------------------------------------------------------------------------
# Plans + sharding
# ---------------------------------------------------------------------------


class TestRunPlan:
    def test_plan_matches_specs_builder(self):
        from repro.eval.experiments import specs_table1

        p = plan("table1")
        assert list(p.cells) == specs_table1(QUICK)
        assert p.total_cells == len(p.cells)
        assert p.profile == "quick" and p.shard is None

    def test_plan_is_picklable_and_fingerprint_stable(self):
        p = plan("fig27", "paper", shard=(1, 2))
        clone = pickle.loads(pickle.dumps(p))
        assert clone == p
        assert clone.fingerprint() == p.fingerprint()

    def test_fingerprint_depends_on_identity(self):
        assert plan("fig27").fingerprint() != plan("fig17").fingerprint()
        assert plan("fig27").fingerprint() != plan("fig27", "paper").fingerprint()
        assert (
            plan("fig27", shard=(0, 2)).fingerprint()
            != plan("fig27", shard=(1, 2)).fingerprint()
        )
        assert (
            plan("fig27", verify="off").fingerprint() != plan("fig27").fingerprint()
        )

    def test_verify_policy_applied_to_every_cell(self):
        p = plan("fig17", verify="off")
        assert all(c.verify == "off" for c in p.cells)
        assert plan("fig17").cells[0].verify == "full"

    def test_invalid_verify_policy(self):
        with pytest.raises(ValueError, match="verify policy"):
            plan("fig17", verify="some")

    def test_invalid_shard(self):
        for bad in ((2, 2), (-1, 2), (0, 0)):
            with pytest.raises(ValueError):
                plan("fig17", shard=bad)

    @pytest.mark.parametrize("n", [2, 3, 4, 7])
    def test_shard_union_equals_unsharded_plan(self, n):
        full = plan("table1")
        shards = [plan("table1", shard=(i, n)) for i in range(n)]
        union = sorted(cell_key(c) for s in shards for c in s.cells)
        assert union == sorted(cell_key(c) for c in full.cells)
        # disjoint, and each shard records the full plan's size
        assert sum(len(s.cells) for s in shards) == len(full.cells)
        assert all(s.total_cells == len(full.cells) for s in shards)

    def test_shards_are_deterministic(self):
        a = plan("fig19", shard=(0, 3))
        b = plan("fig19", shard=(0, 3))
        assert a.cells == b.cells

    def test_shards_balanced_and_split_big_topology_groups(self):
        # fig27 is one single topology group (a seed sweep): a partition that
        # never split groups would put all 10 cells on shard 0.
        sizes = [len(plan("fig27", shard=(i, 2)).cells) for i in range(2)]
        assert sorted(sizes) == [5, 5]

    def test_partition_cells_preserves_relative_order(self):
        cells = [CellSpec.make("sabre", "grid", 2, seed=s) for s in range(6)]
        for shard in partition_cells(cells, 3):
            assert list(shard) == sorted(shard)

    def test_adhoc_plan_wraps_cells(self):
        cells = [CellSpec.make("sabre", "grid", 2, seed=0)]
        p = adhoc_plan("bench", cells)
        assert p.experiment == "bench" and p.cells == tuple(cells)


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


class TestExecutors:
    def test_builtin_executors_registered(self):
        assert set(executor_names()) >= {"serial", "pool", "shard-coordinator"}
        assert get_executor("coordinator").name == "shard-coordinator"

    def test_unknown_executor_suggests(self):
        p = adhoc_plan("x", [CellSpec.make("sabre", "grid", 2)])
        with pytest.raises(UnknownNameError, match="did you mean"):
            execute(p, executor="serail")

    def test_serial_and_pool_agree(self):
        p = plan("fig27")
        serial = execute(p, executor="serial")
        pool = execute(p, executor="pool", jobs=2)
        assert _metrics(serial.results) == _metrics(pool.results)
        assert serial.executor == "serial" and pool.executor == "pool"

    def test_default_executor_choice(self):
        p = adhoc_plan("x", [CellSpec.make("sabre", "grid", 2)])
        assert execute(p).executor == "serial"
        assert execute(p, jobs=2).executor == "pool"

    def test_report_counts_and_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [
            CellSpec.make("sabre", "grid", 2, seed=0),
            CellSpec.make("sabre", "lattice", 10, max_qubits=50),  # skipped
        ]
        report = execute(adhoc_plan("mix", specs), cache=cache)
        assert report.status_counts == {"ok": 1, "skipped": 1}
        assert report.ok
        data = json.loads(json.dumps(report.to_dict()))
        assert data["cells"] == 2 and data["cache_stats"]["misses"] == 2
        slim = report.to_dict(include_results=False)
        assert "results" not in slim

    def test_serial_executor_refuses_journal(self, tmp_path):
        p = adhoc_plan("x", [CellSpec.make("sabre", "grid", 2)])
        with pytest.raises(ValueError, match="shard-coordinator"):
            execute(p, executor="serial", journal=str(tmp_path / "j"))


# ---------------------------------------------------------------------------
# Journal + resume + straggler retry
# ---------------------------------------------------------------------------


class TestJournalResume:
    def _plan(self, seeds=(0, 1, 2, 3)):
        return adhoc_plan(
            "mini", [CellSpec.make("sabre", "grid", 2, seed=s) for s in seeds]
        )

    def test_journal_streams_every_cell(self, tmp_path):
        p = self._plan()
        report = execute(p, journal=str(tmp_path / "j"))
        assert report.executor == "shard-coordinator"
        journal = RunJournal.open(tmp_path / "j")
        assert len(journal) == len(p.cells)
        assert journal.meta["plan"] == p.fingerprint()
        journal.close()

    def test_fresh_journal_refuses_to_clobber(self, tmp_path):
        p = self._plan()
        execute(p, journal=str(tmp_path / "j"))
        with pytest.raises(FileExistsError):
            execute(p, journal=str(tmp_path / "j"))

    def test_resume_after_crash_matches_clean_run(self, tmp_path):
        p = self._plan()
        clean = execute(p, journal=str(tmp_path / "clean"))

        # Simulate a crash: meta + first two cells survive, plus a torn line.
        lines = (tmp_path / "clean" / "journal.jsonl").read_text().splitlines(True)
        crash = tmp_path / "crash"
        crash.mkdir()
        (crash / "journal.jsonl").write_text("".join(lines[:3]) + '{"torn')

        resumed = execute(p, resume=str(crash))
        assert _metrics(resumed.results) == _metrics(clean.results)
        assert resumed.resumed == 2
        # the journal now holds the full run again
        journal = RunJournal.open(crash)
        assert len(journal) == len(p.cells)
        journal.close()

    def test_resume_refuses_other_plan(self, tmp_path):
        execute(self._plan(), journal=str(tmp_path / "j"))
        with pytest.raises(ValueError, match="different plan"):
            execute(self._plan(seeds=(7, 8)), resume=str(tmp_path / "j"))

    def test_resume_refuses_other_code_version(self, tmp_path):
        p = self._plan()
        execute(p, journal=str(tmp_path / "j"))
        path = tmp_path / "j" / "journal.jsonl"
        lines = path.read_text().splitlines(True)
        meta = json.loads(lines[0])
        meta["code"] = "deadbeefcafe"
        path.write_text(json.dumps(meta) + "\n" + "".join(lines[1:]))
        with pytest.raises(ValueError, match="code version"):
            execute(p, resume=str(tmp_path / "j"))

    def test_resume_missing_journal_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            execute(self._plan(), resume=str(tmp_path / "nope"))

    def test_straggler_timeout_retried_once_and_accounted(self):
        p = adhoc_plan(
            "slow", [CellSpec.make("satmap", "sycamore", 4, timeout_s=0.2)]
        )
        report = execute(p, executor="shard-coordinator")
        assert report.status_counts == {"timeout": 1}
        assert report.retried == 1 and report.recovered == 0
        assert report.results[0].extra.get("retries") == 1

    def test_straggler_recovery_accounted(self, monkeypatch):
        from repro.eval import executors as ex

        calls = {"n": 0}

        def flaky_run_cell(approach, kind, size, **kwargs):
            calls["n"] += 1
            status = "timeout" if calls["n"] == 1 else "ok"
            return CompilationResult(
                approach, f"{kind} {size}", size * size, status=status,
                depth=7, swap_count=1,
            )

        monkeypatch.setattr(ex, "run_cell", flaky_run_cell)
        p = adhoc_plan("flaky", [CellSpec.make("sabre", "grid", 2)])
        report = execute(p, executor="shard-coordinator")
        assert calls["n"] == 2
        assert report.retried == 1 and report.recovered == 1
        assert report.results[0].status == "ok"
        assert report.results[0].extra.get("retries") == 1

    def test_resumed_already_retried_timeout_is_final(self, tmp_path):
        # The first run journaled both the timeout and its (failed) retry;
        # resuming must serve the retried result, not re-dispatch again.
        p = adhoc_plan(
            "slow", [CellSpec.make("satmap", "sycamore", 4, timeout_s=0.2)]
        )
        first = execute(p, executor="shard-coordinator", journal=str(tmp_path / "j"))
        assert first.retried == 1
        report = execute(p, resume=str(tmp_path / "j"))
        assert report.resumed == 1 and report.retried == 0

    def test_resumed_unretried_timeout_gets_its_retry(self, tmp_path):
        # A crash between a timeout and its retry pass must not make the
        # timeout permanent: the resuming run owes the cell its re-dispatch,
        # matching what an uninterrupted run would have done.
        p = adhoc_plan(
            "slow", [CellSpec.make("satmap", "sycamore", 4, timeout_s=0.2)]
        )
        execute(p, executor="shard-coordinator", journal=str(tmp_path / "j"))
        # keep meta + the *first* (pre-retry) attempt only
        path = tmp_path / "j" / "journal.jsonl"
        lines = path.read_text().splitlines(True)
        assert len(lines) == 3  # meta, attempt, retry
        path.write_text("".join(lines[:2]))
        report = execute(p, resume=str(tmp_path / "j"))
        assert report.resumed == 1 and report.retried == 1
        assert report.results[0].extra.get("retries") == 1

    def test_retry_budget_is_respected(self, monkeypatch):
        from repro.eval import executors as ex

        calls = {"n": 0}

        def always_timeout(approach, kind, size, **kwargs):
            calls["n"] += 1
            return CompilationResult(
                approach, f"{kind} {size}", size * size, status="timeout"
            )

        monkeypatch.setattr(ex, "run_cell", always_timeout)
        p = adhoc_plan("t", [CellSpec.make("sabre", "grid", 2)])
        report = execute(p, executor="shard-coordinator", retry_timeouts=3)
        assert calls["n"] == 4  # first attempt + three re-dispatches
        assert report.retried == 3 and report.recovered == 0
        assert report.results[0].extra["retries"] == 3

    def test_retry_timeout_multiplier_recovers_marginal_cell(self, monkeypatch):
        # A cell that is marginally too slow for its budget times out on the
        # first attempt; with a multiplier the retry gets a wider budget and
        # recovers instead of timing out identically twice.
        from repro.eval import executors as ex

        budgets = []

        def budget_sensitive(approach, kind, size, timeout_s=None, **kwargs):
            budgets.append(timeout_s)
            status = "timeout" if timeout_s is not None and timeout_s < 1 else "ok"
            return CompilationResult(
                approach, f"{kind} {size}", size * size, status=status,
                depth=7, swap_count=1,
            )

        monkeypatch.setattr(ex, "run_cell", budget_sensitive)
        p = adhoc_plan(
            "marginal", [CellSpec.make("sabre", "grid", 2, timeout_s=0.5)]
        )
        report = execute(
            p, executor="shard-coordinator", retry_timeout_multiplier=4.0
        )
        assert budgets == [0.5, 2.0]
        assert report.retried == 1 and report.recovered == 1
        assert report.results[0].status == "ok"
        assert report.retry_timeout_multiplier == 4.0
        assert report.to_dict()["retry_timeout_multiplier"] == 4.0

    def test_default_multiplier_retries_with_same_budget(self, monkeypatch):
        from repro.eval import executors as ex

        budgets = []

        def always_timeout(approach, kind, size, timeout_s=None, **kwargs):
            budgets.append(timeout_s)
            return CompilationResult(
                approach, f"{kind} {size}", size * size, status="timeout"
            )

        monkeypatch.setattr(ex, "run_cell", always_timeout)
        p = adhoc_plan(
            "marginal", [CellSpec.make("sabre", "grid", 2, timeout_s=0.5)]
        )
        report = execute(p, executor="shard-coordinator")
        assert budgets == [0.5, 0.5]
        assert report.retry_timeout_multiplier == 1.0


# ---------------------------------------------------------------------------
# Verification policy
# ---------------------------------------------------------------------------


class TestVerifyPolicy:
    def test_off_skips_verification(self):
        res = run_cell("sabre", "grid", 2, verify="off")
        assert res.ok and res.verified is None
        assert res.extra["verify_policy"] == "off"

    def test_bool_compat(self):
        assert run_cell("sabre", "grid", 2, verify=False).verified is None
        assert run_cell("sabre", "grid", 2, verify=True).verified is True

    def test_full_is_default_and_not_annotated(self):
        res = run_cell("sabre", "grid", 2)
        assert res.verified is True
        assert "verify_policy" not in res.extra

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="verify policy"):
            run_cell("sabre", "grid", 2, verify="some")

    def test_sample_is_deterministic(self):
        decisions = [sample_verifies("sabre", "grid", s) for s in range(64)]
        assert decisions == [sample_verifies("sabre", "grid", s) for s in range(64)]
        # the hash split actually samples: neither all-on nor all-off
        assert 0 < sum(decisions) < len(decisions)

    def test_sample_decision_varies_within_a_seed_sweep(self):
        # a single-topology seed sweep must not share one all-or-nothing
        # decision: the cell's options are part of the sampled identity
        decisions = [
            sample_verifies("sabre", "grid", 6, params=(("seed", s),))
            for s in range(64)
        ]
        assert 0 < sum(decisions) < len(decisions)

    def test_sample_cell_records_policy(self):
        res = run_cell("sabre", "grid", 2, verify="sample")
        assert res.extra["verify_policy"] == "sample"
        expected = sample_verifies("sabre", "grid", 2)
        assert (res.verified is not None) == expected

    def test_policy_is_part_of_cache_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = dict(kwargs=(), rename=None, timeout_s=None)
        full = cache.key("sabre", "grid", 2, **base)
        off = cache.key("sabre", "grid", 2, **base, verify="off")
        sample = cache.key("sabre", "grid", 2, **base, verify="sample")
        assert len({full, off, sample}) == 3

    def test_spec_make_validates_policy(self):
        with pytest.raises(ValueError, match="verify policy"):
            CellSpec.make("sabre", "grid", 2, verify="maybe")

    def test_cell_key_includes_policy(self):
        a = CellSpec.make("sabre", "grid", 2)
        b = CellSpec.make("sabre", "grid", 2, verify="off")
        assert cell_key(a) != cell_key(b)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCLI:
    def test_list_prints_registry_table(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "Fig. 27" in out and "sweep" in out

    def test_shard_flag_runs_slice(self, capsys):
        assert main(["-e", "fig27", "--profile", "paper", "--shard", "0/2"]) == 0
        out = capsys.readouterr().out
        assert "shard 0/2" in out and "run: fig27" in out

    def test_bad_shard_spec_errors(self):
        for bad in ("zero-of-two", "2/2", "-1/2", "0/0"):
            with pytest.raises(SystemExit):
                main(["-e", "fig27", "--shard", bad])

    def test_unknown_experiment_errors_with_suggestion(self, capsys):
        with pytest.raises(SystemExit):
            main(["-e", "fig172"])
        assert "did you mean" in capsys.readouterr().err

    def test_synonym_accepted(self, capsys):
        assert main(["-e", "figure27", "--profile", "paper"]) == 0
        assert "run: fig27" in capsys.readouterr().out

    def test_journal_and_resume_flags(self, tmp_path, capsys):
        jdir = tmp_path / "j"
        assert main(
            ["-e", "fig27", "--profile", "paper", "--journal", str(jdir)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["-e", "fig27", "--profile", "paper", "--resume", str(jdir)]
        ) == 0
        out = capsys.readouterr().out
        assert "resumed=10" in out

    def test_journal_requires_single_experiment(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["-e", "fig27", "-e", "fig17", "--journal", str(tmp_path / "j")])

    def test_verify_flag_threaded(self, tmp_path, capsys):
        assert main(["-e", "fig27", "--profile", "paper", "--verify", "off"]) == 0
        out = capsys.readouterr().out
        assert "verify=off" in out
