"""Tests for routed completion and the greedy-router baseline."""

import pytest

from helpers import assert_valid_qft
from repro.arch import CaterpillarTopology, GridTopology, LNNTopology, SycamoreTopology, Topology
from repro.circuit import MappingBuilder
from repro.core import GreedyRouterMapper, QFTDependenceTracker, complete_remaining
from repro.core.routed import finish_hadamards


class TestCompleteRemaining:
    def test_completes_whole_kernel_from_scratch(self):
        topo = GridTopology(3, 3)
        builder = MappingBuilder(topo, list(range(9)), num_logical=9)
        tracker = QFTDependenceTracker(9)
        swaps = complete_remaining(builder, tracker)
        finish_hadamards(builder, tracker)
        assert tracker.all_done()
        assert swaps >= 0
        assert_valid_qft(builder.build(), 9)

    def test_completes_selected_pairs_only(self):
        topo = LNNTopology(5)
        builder = MappingBuilder(topo, list(range(5)), num_logical=5)
        tracker = QFTDependenceTracker(5)
        complete_remaining(builder, tracker, pairs=[(0, 4)])
        assert tracker.pair_is_done(0, 4)
        assert not tracker.pair_is_done(1, 2)

    def test_pulls_in_blocking_pairs_automatically(self):
        # completing (1, 2) requires (0, 1) and (0, 2) first (H(1) depends on
        # (0,1)); complete_remaining must discover that on its own
        topo = LNNTopology(3)
        builder = MappingBuilder(topo, [0, 1, 2], num_logical=3)
        tracker = QFTDependenceTracker(3)
        complete_remaining(builder, tracker, pairs=[(1, 2)])
        assert tracker.pair_is_done(1, 2)
        assert tracker.pair_is_done(0, 1)

    def test_already_done_pairs_are_skipped(self):
        topo = LNNTopology(3)
        builder = MappingBuilder(topo, [0, 1, 2], num_logical=3)
        tracker = QFTDependenceTracker(3)
        complete_remaining(builder, tracker)
        ops_before = len(builder.ops)
        swaps = complete_remaining(builder, tracker)
        assert swaps == 0
        assert len(builder.ops) == ops_before

    def test_finish_hadamards_emits_remaining(self):
        topo = LNNTopology(2)
        builder = MappingBuilder(topo, [0, 1], num_logical=2)
        tracker = QFTDependenceTracker(2)
        complete_remaining(builder, tracker)
        emitted = finish_hadamards(builder, tracker)
        assert tracker.all_done()
        assert emitted >= 1


class TestGreedyRouter:
    @pytest.mark.parametrize(
        "topo_factory",
        [
            lambda: LNNTopology(6),
            lambda: GridTopology(3, 3),
            lambda: SycamoreTopology(4),
            lambda: CaterpillarTopology.regular_groups(2),
        ],
        ids=["lnn6", "grid3x3", "sycamore4", "caterpillar10"],
    )
    def test_correct_on_every_architecture(self, topo_factory):
        topo = topo_factory()
        mapped = GreedyRouterMapper(topo).map_qft()
        assert_valid_qft(mapped, topo.num_qubits, statevector_limit=6)

    def test_strict_textbook_order(self):
        from repro.verify import check_mapped_qft_structure

        topo = LNNTopology(5)
        mapped = GreedyRouterMapper(topo).map_qft()
        assert check_mapped_qft_structure(mapped, 5, strict_order=True).ok

    def test_respects_custom_initial_layout(self):
        topo = GridTopology(2, 3)
        layout = [5, 4, 3, 2, 1, 0]
        mapped = GreedyRouterMapper(topo, initial_layout=layout).map_qft()
        assert mapped.initial_layout == layout
        assert_valid_qft(mapped, 6)

    def test_partial_kernel(self):
        topo = GridTopology(3, 3)
        mapped = GreedyRouterMapper(topo).map_qft(4)
        assert mapped.num_logical == 4
        assert_valid_qft(mapped, 4)

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            GreedyRouterMapper(LNNTopology(3)).map_qft(5)

    def test_is_worse_than_the_domain_specific_mapper(self):
        import repro

        topo = GridTopology(4, 4)
        greedy = GreedyRouterMapper(topo).map_qft()
        ours = repro.compile(
            workload="qft", architecture=topo, approach="ours", verify=False
        ).mapped
        assert ours.depth() < greedy.depth()
