"""Tests for the lattice-surgery (Section 6) and 2-D grid (Appendix 7) mappers."""

import pytest

from helpers import assert_valid_qft
from repro.arch import GridTopology, LatticeSurgeryTopology, LNNTopology
from repro.core import GridQFTMapper, LatticeSurgeryQFTMapper


class TestLatticeSurgeryMapper:
    @pytest.mark.parametrize("m", [2, 3, 4, 5, 6])
    def test_produces_verified_qft(self, m):
        topo = LatticeSurgeryTopology(m)
        mapped = LatticeSurgeryQFTMapper(topo).map_qft()
        assert_valid_qft(mapped, topo.num_qubits)

    @pytest.mark.parametrize("m", [3, 4, 6, 8])
    def test_no_routed_fallback(self, m):
        mapped = LatticeSurgeryQFTMapper(LatticeSurgeryTopology(m)).map_qft()
        assert mapped.metadata["final_fallback_swaps"] == 0
        assert mapped.metadata["ie_fallback_swaps"] == 0
        assert mapped.metadata["ia_fallback_swaps"] == 0

    @pytest.mark.parametrize("m", [4, 6, 8, 10, 12])
    def test_weighted_depth_is_linear(self, m):
        topo = LatticeSurgeryTopology(m)
        n = topo.num_qubits
        mapped = LatticeSurgeryQFTMapper(topo).map_qft()
        # paper: ~5N; our row-unit construction has a larger constant but must
        # stay linear in N (DESIGN.md discusses the constant-factor gap)
        assert mapped.depth() <= 20 * n + 60

    def test_weighted_depth_exceeds_unit_depth(self):
        topo = LatticeSurgeryTopology(5)
        mapped = LatticeSurgeryQFTMapper(topo).map_qft()
        assert mapped.depth() > mapped.unit_depth()

    def test_vertical_swaps_are_rare_compared_to_fast_swaps(self):
        topo = LatticeSurgeryTopology(6)
        mapped = LatticeSurgeryQFTMapper(topo).map_qft()
        slow = fast = 0
        for op in mapped.ops:
            if op.is_swap:
                if topo.is_fast_link(*op.physical):
                    fast += 1
                else:
                    slow += 1
        # the construction keeps qubit movement on the fast intra-row links and
        # only uses vertical links for transversal unit swaps
        assert slow < fast

    def test_cphase_count(self):
        topo = LatticeSurgeryTopology(5)
        n = topo.num_qubits
        mapped = LatticeSurgeryQFTMapper(topo).map_qft()
        assert mapped.cphase_count() == n * (n - 1) // 2

    def test_requires_lattice_surgery_topology(self):
        with pytest.raises(TypeError):
            LatticeSurgeryQFTMapper(GridTopology(4, 4))

    def test_partial_mapping_not_supported(self):
        with pytest.raises(ValueError):
            LatticeSurgeryQFTMapper(LatticeSurgeryTopology(4)).map_qft(7)

    def test_strict_ie_variant_still_correct(self):
        topo = LatticeSurgeryTopology(4)
        mapped = LatticeSurgeryQFTMapper(topo, strict_ie=True).map_qft()
        assert_valid_qft(mapped, topo.num_qubits)


class TestGridMapper:
    @pytest.mark.parametrize("m", [2, 3, 4, 6])
    def test_produces_verified_qft(self, m):
        topo = GridTopology(m, m)
        mapped = GridQFTMapper(topo).map_qft()
        assert_valid_qft(mapped, topo.num_qubits)

    def test_rectangular_grid(self):
        topo = GridTopology(3, 5)
        mapped = GridQFTMapper(topo).map_qft()
        assert_valid_qft(mapped, 15)

    @pytest.mark.parametrize("m", [4, 6, 8])
    def test_unit_depth_linear(self, m):
        topo = GridTopology(m, m)
        mapped = GridQFTMapper(topo).map_qft()
        assert mapped.depth() <= 10 * topo.num_qubits + 40

    def test_requires_grid_topology(self):
        with pytest.raises(TypeError):
            GridQFTMapper(LNNTopology(9))

    def test_uniform_latency_means_depth_equals_unit_depth(self):
        topo = GridTopology(4, 4)
        mapped = GridQFTMapper(topo).map_qft()
        assert mapped.depth() == mapped.unit_depth()
