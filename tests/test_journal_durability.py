"""Durability tests for the run journal: fsync, corruption, torn tails.

The journal's contract is "the intact prefix is exactly the finished
cells".  These tests hold it to that under the failures that actually
happen: power loss between flush and disk (fsync), bit rot / truncated
restores mid-file (JournalCorruptError), and writes torn at an arbitrary
byte offset by a crash (the every-offset sweep).
"""

import json

import pytest

from repro.eval import CellSpec, JournalCorruptError, RunJournal, cell_key, chaos
from repro.eval.executors import run_specs

META = {"experiment": "t", "plan": "p" * 24, "code": "c" * 12}


def _filled_journal(root, n=3, **kwargs):
    """A closed journal holding ``n`` real finished cells."""

    specs = [CellSpec.make("sabre", "grid", 2, seed=s) for s in range(n)]
    results = run_specs(specs)
    journal = RunJournal.create(root, META, **kwargs)
    for spec, result in zip(specs, results):
        journal.append(cell_key(spec), result)
    journal.close()
    return [cell_key(s) for s in specs]


class TestFsync:
    @pytest.fixture
    def fsync_calls(self, monkeypatch):
        from repro.eval import journal as journal_module

        calls = []
        real_fsync = journal_module.os.fsync

        def counting_fsync(fd):
            calls.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(journal_module.os, "fsync", counting_fsync)
        return calls

    def _append_n(self, journal, n):
        specs = [CellSpec.make("sabre", "grid", 2, seed=s) for s in range(n)]
        for spec, result in zip(specs, run_specs(specs)):
            journal.append(cell_key(spec), result)

    def test_default_syncs_every_append(self, tmp_path, fsync_calls):
        journal = RunJournal.create(tmp_path, META)
        created = len(fsync_calls)
        assert created >= 1  # the meta line (plus the directory) is durable
        self._append_n(journal, 3)
        assert len(fsync_calls) == created + 3
        journal.close()
        assert len(fsync_calls) == created + 3  # nothing pending at close

    def test_wider_stride_batches_syncs(self, tmp_path, fsync_calls):
        journal = RunJournal.create(tmp_path, META, fsync_every=2)
        created = len(fsync_calls)
        self._append_n(journal, 3)
        assert len(fsync_calls) == created + 1  # after the 2nd append only
        journal.close()
        assert len(fsync_calls) == created + 2  # close flushes the partial stride

    def test_zero_disables_fsync(self, tmp_path, fsync_calls):
        journal = RunJournal.create(tmp_path, META, fsync_every=0)
        self._append_n(journal, 3)
        journal.close()
        assert fsync_calls == []

    def test_open_honours_stride(self, tmp_path, fsync_calls):
        _filled_journal(tmp_path, n=1, fsync_every=0)
        journal = RunJournal.open(tmp_path, fsync_every=1)
        before = len(fsync_calls)
        self._append_n(journal, 2)
        assert len(fsync_calls) == before + 2
        journal.close()


class TestMidFileCorruption:
    def _lines(self, root):
        return (root / "journal.jsonl").read_text().splitlines(True)

    def test_unparseable_line_mid_file_raises(self, tmp_path):
        _filled_journal(tmp_path)
        lines = self._lines(tmp_path)
        lines[2] = "@@@ not json @@@\n"
        (tmp_path / "journal.jsonl").write_text("".join(lines))
        with pytest.raises(JournalCorruptError, match="line 3"):
            RunJournal.open(tmp_path)

    def test_terminated_garbage_final_line_raises(self, tmp_path):
        # Newline-terminated garbage is NOT a torn write: the "\n" landed,
        # so the line was written whole -- this is damage, not a crash.
        _filled_journal(tmp_path)
        path = tmp_path / "journal.jsonl"
        path.write_text(path.read_text() + "@@@ damage @@@\n")
        with pytest.raises(JournalCorruptError, match="unparseable JSON"):
            RunJournal.open(tmp_path)

    def test_non_object_record_raises(self, tmp_path):
        _filled_journal(tmp_path)
        lines = self._lines(tmp_path)
        lines.insert(2, "[1, 2, 3]\n")
        (tmp_path / "journal.jsonl").write_text("".join(lines))
        with pytest.raises(JournalCorruptError, match="not an object"):
            RunJournal.open(tmp_path)

    def test_cell_record_with_mangled_result_raises(self, tmp_path):
        _filled_journal(tmp_path)
        lines = self._lines(tmp_path)
        record = json.loads(lines[1])
        del record["result"]
        lines[1] = json.dumps(record) + "\n"
        (tmp_path / "journal.jsonl").write_text("".join(lines))
        with pytest.raises(JournalCorruptError, match="cell record"):
            RunJournal.open(tmp_path)

    def test_unknown_record_types_still_tolerated(self, tmp_path):
        # Intact lines of a type this version doesn't know are forward
        # compatibility, not corruption.
        keys = _filled_journal(tmp_path)
        lines = self._lines(tmp_path)
        lines.insert(2, json.dumps({"type": "annotation", "note": "hi"}) + "\n")
        (tmp_path / "journal.jsonl").write_text("".join(lines))
        journal = RunJournal.open(tmp_path)
        assert set(journal.results()) == set(keys)
        journal.close()

    def test_empty_file_raises(self, tmp_path):
        (tmp_path / "journal.jsonl").write_bytes(b"")
        with pytest.raises(JournalCorruptError):
            RunJournal.open(tmp_path)


class TestTornTail:
    def test_torn_meta_only_journal_is_unresumable(self, tmp_path):
        (tmp_path / "journal.jsonl").write_text('{"type": "meta", "co')
        with pytest.raises(JournalCorruptError, match="torn metadata"):
            RunJournal.open(tmp_path)

    def test_unterminated_but_complete_json_is_still_torn(self, tmp_path):
        # The crash can land between the payload and its "\n".  The record
        # must be treated as torn anyway: accepting it and then appending
        # would weld the next record onto it (mid-file corruption we made
        # ourselves).
        keys = _filled_journal(tmp_path)
        path = tmp_path / "journal.jsonl"
        raw = path.read_bytes()
        chaos.tear_tail(path, len(raw) - 1)  # exactly the final newline
        journal = RunJournal.open(tmp_path)
        assert journal.repaired_bytes > 0
        assert set(journal.results()) == set(keys[:-1])
        journal.close()
        assert path.read_bytes() == raw[: raw.rfind(b"\n", 0, len(raw) - 1) + 1]

    def test_every_byte_offset_of_the_last_record(self, tmp_path):
        """Property: no tear inside the last record loses an intact prefix cell.

        Sweeps every truncation point from 'last record entirely gone' to
        'only its newline missing', asserting open() serves exactly the
        intact prefix, repairs the file, and leaves it cleanly appendable.
        """

        keys = _filled_journal(tmp_path / "master")
        master = (tmp_path / "master" / "journal.jsonl").read_bytes()
        last_start = master.rfind(b"\n", 0, len(master) - 1) + 1
        prefix_keys = set(keys[:-1])

        for cut in range(last_start, len(master)):
            root = tmp_path / f"cut{cut}"
            root.mkdir()
            path = root / "journal.jsonl"
            path.write_bytes(master)
            chaos.tear_tail(path, cut)

            journal = RunJournal.open(root)
            if cut == last_start:
                # The whole record vanished with its line: a clean journal
                # that simply never saw the last cell.
                assert journal.repaired_bytes == 0
            else:
                assert journal.repaired_bytes == cut - last_start
            assert set(journal.results()) == prefix_keys, f"cut at byte {cut}"
            # The repaired file must be cleanly appendable: journal the torn
            # cell again and re-open without complaint.
            spec = CellSpec.make("sabre", "grid", 2, seed=2)
            journal.append(keys[-1], run_specs([spec])[0])
            journal.close()
            reopened = RunJournal.open(root)
            assert set(reopened.results()) == set(keys), f"cut at byte {cut}"
            assert reopened.repaired_bytes == 0
            reopened.close()

    def test_resume_after_tear_recovers_full_run(self, tmp_path):
        # End-to-end: execute --journal, tear the tail, --resume; the
        # resumed run recomputes only the torn cell and the final results
        # match an uninterrupted run.
        from repro.eval import adhoc_plan, execute

        p = adhoc_plan(
            "mini", [CellSpec.make("sabre", "grid", 2, seed=s) for s in range(3)]
        )
        clean = execute(p, journal=str(tmp_path / "clean"))
        path = tmp_path / "clean" / "journal.jsonl"
        raw = path.read_bytes()
        chaos.tear_tail(path, len(raw) - 7)  # rip into the last record
        resumed = execute(p, resume=str(tmp_path / "clean"))
        assert resumed.resumed == len(p.cells) - 1

        def stable(result):
            data = result.to_dict()
            data.pop("compile_time_s", None)  # wall time is volatile
            return data

        assert [stable(r) for r in resumed.results] == [
            stable(r) for r in clean.results
        ]
