"""Tests for the LNN linear-depth QFT mapper (the paper's base case)."""

import pytest

from helpers import assert_valid_qft
from repro.arch import GridTopology, LNNTopology
from repro.core import LNNQFTMapper, map_qft_on_line


class TestLNNMapper:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6, 7])
    def test_produces_verified_qft_with_correct_unitary(self, n):
        mapped = LNNQFTMapper(LNNTopology(n)).map_qft()
        result = assert_valid_qft(mapped, n)
        if n <= 7:
            assert result.unitary_checked

    @pytest.mark.parametrize("n", [10, 20, 40, 80])
    def test_depth_scales_linearly(self, n):
        mapped = LNNQFTMapper(LNNTopology(n)).map_qft()
        assert_valid_qft(mapped, n)
        assert mapped.depth() <= 6 * n
        assert mapped.depth() >= 2 * n

    @pytest.mark.parametrize("n", [5, 10, 20])
    def test_cphase_and_swap_counts(self, n):
        mapped = LNNQFTMapper(LNNTopology(n)).map_qft()
        pairs = n * (n - 1) // 2
        assert mapped.cphase_count() == pairs
        # every pair swaps at most once, minus the ones that finish in place
        assert pairs - n <= mapped.swap_count() <= pairs

    def test_no_fallback_on_a_line(self):
        mapped = LNNQFTMapper(LNNTopology(30)).map_qft()
        assert mapped.metadata["fallback_swaps"] == 0

    def test_partial_kernel_on_larger_line(self):
        mapped = LNNQFTMapper(LNNTopology(10)).map_qft(4)
        assert mapped.num_logical == 4
        assert_valid_qft(mapped, 4)

    def test_too_many_logical_qubits_rejected(self):
        with pytest.raises(ValueError):
            map_qft_on_line(LNNTopology(3), [0, 1, 2], 4)

    def test_explicit_line_through_a_grid(self):
        grid = GridTopology(3, 3)
        mapper = LNNQFTMapper(grid, line=grid.serpentine_order())
        mapped = mapper.map_qft()
        assert_valid_qft(mapped, 9)

    def test_uncoupled_line_rejected(self):
        grid = GridTopology(2, 2)
        with pytest.raises(ValueError):
            LNNQFTMapper(grid, line=[0, 3, 1, 2])

    def test_topology_without_line_requires_explicit_path(self):
        from repro.arch import Topology

        star = Topology(4, [(0, 1), (0, 2), (0, 3)])
        with pytest.raises(ValueError):
            LNNQFTMapper(star)

    def test_final_layout_is_a_permutation(self):
        mapped = LNNQFTMapper(LNNTopology(12)).map_qft()
        final = mapped.final_layout()
        assert sorted(final) == list(range(12))

    def test_compile_time_is_fast(self):
        import time

        start = time.perf_counter()
        LNNQFTMapper(LNNTopology(64)).map_qft()
        assert time.perf_counter() - start < 5.0
