"""Registry behaviour: suggestions, duplicates, synonyms, cache policy."""

import pytest

from repro import (
    DuplicateRegistrationError,
    Registry,
    UnknownNameError,
    approach_names,
    architecture_names,
    get_approach,
    get_workload,
    make_architecture,
    workload_names,
)
from repro.approaches import APPROACH_REGISTRY
from repro.arch.registry import ARCHITECTURES
from repro.eval import CellSpec, ResultCache, run_specs
from repro.workloads import WORKLOADS


class TestRegistryCore:
    def test_register_get_and_synonyms(self):
        reg = Registry("thing")
        reg.register("alpha", 1, synonyms=("first", "a"))
        assert reg.get("alpha") == 1
        assert reg.get("FIRST") == 1  # case-insensitive
        assert reg.canonical("a") == "alpha"
        assert reg.names() == ("alpha",)
        assert set(reg.synonyms("alpha")) == {"first", "a"}

    def test_unknown_name_lists_registered_and_suggests(self):
        reg = Registry("thing")
        reg.register("sycamore", 1)
        reg.register("lattice", 2)
        with pytest.raises(UnknownNameError) as exc:
            reg.get("sycamor")
        msg = str(exc.value)
        assert "sycamore" in msg and "lattice" in msg
        assert "did you mean" in msg
        assert exc.value.suggestions == ("sycamore",)

    def test_duplicate_name_raises(self):
        reg = Registry("thing")
        reg.register("x", 1)
        with pytest.raises(DuplicateRegistrationError):
            reg.register("x", 2)

    def test_duplicate_synonym_raises(self):
        reg = Registry("thing")
        reg.register("x", 1, synonyms=("ex",))
        with pytest.raises(DuplicateRegistrationError):
            reg.register("y", 2, synonyms=("EX",))

    def test_unknown_name_error_survives_pickling(self):
        import pickle

        err = UnknownNameError("thing", "grd", ["grid", "lnn"])
        back = pickle.loads(pickle.dumps(err))
        assert back.name == "grd" and "did you mean" in str(back)


class TestBuiltinRegistries:
    def test_builtin_names(self):
        assert set(workload_names()) >= {"qft", "qaoa", "random"}
        assert set(approach_names()) == {"ours", "sabre", "satmap", "lnn", "greedy"}
        assert set(architecture_names()) == {
            "sycamore",
            "heavyhex",
            "lattice",
            "grid",
            "lnn",
        }

    def test_synonyms_resolve_everywhere(self):
        assert get_approach("our-approach").name == "ours"
        assert get_workload("random-circuit").name == "random"
        assert make_architecture("heavy-hex", 2).num_qubits == 10
        assert ARCHITECTURES.canonical("caterpillar") == "heavyhex"

    def test_unknown_names_raise_with_suggestions(self):
        with pytest.raises(UnknownNameError, match="did you mean 'qaoa'"):
            get_workload("qoaa")
        with pytest.raises(UnknownNameError, match="did you mean 'sabre'"):
            get_approach("sabrre")
        with pytest.raises(UnknownNameError, match="did you mean 'sycamore'"):
            make_architecture("sycamoar", 2)

    def test_duplicate_builtin_registration_raises(self):
        with pytest.raises(DuplicateRegistrationError):
            APPROACH_REGISTRY.register("sabre", object())
        with pytest.raises(DuplicateRegistrationError):
            WORKLOADS.register("qft", object())
        with pytest.raises(DuplicateRegistrationError):
            ARCHITECTURES.register("heavy-hex", object())

    def test_approach_entry_carries_allowed_kwargs(self):
        assert get_approach("sabre").allowed_kwargs == {
            "seed",
            "passes",
            "incremental",
            "kernel",
        }
        assert get_approach("satmap").timeout_param == "timeout_s"
        assert get_approach("satmap").max_qubits is not None


class TestUnsupportedNeverCached:
    def test_unsupported_cells_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [
            CellSpec.make("ours", "grid", 3, workload="qaoa"),  # unsupported
            CellSpec.make("sabre", "grid", 3, workload="qaoa"),  # ok
        ]
        first = run_specs(specs, cache=cache)
        assert first[0].status == "unsupported"
        assert first[1].status == "ok"
        assert len(cache) == 1  # only the ok cell persisted

        second = run_specs(specs, cache=cache)
        assert second[0].status == "unsupported"
        assert second[1].extra.get("cache") == "hit"
        assert second[0].extra.get("cache") is None

    def test_workload_is_part_of_the_cache_key(self, tmp_path):
        cache = ResultCache(tmp_path, version="pinned")
        qft_key = cache.key("sabre", "grid", 3)
        qaoa_key = cache.key("sabre", "grid", 3, workload="qaoa")
        assert qft_key != qaoa_key
        params_key = cache.key(
            "sabre", "grid", 3, workload="qaoa", workload_params=(("seed", 1),)
        )
        assert params_key != qaoa_key
