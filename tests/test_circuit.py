"""Unit tests for repro.circuit.circuit."""

import pytest

from repro.circuit import CPHASE, Circuit, GateKind, H, SWAP


class TestConstruction:
    def test_empty_circuit(self):
        c = Circuit(3)
        assert len(c) == 0
        assert c.num_qubits == 3

    def test_rejects_nonpositive_qubit_count(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_append_validates_qubit_range(self):
        c = Circuit(2)
        with pytest.raises(ValueError):
            c.append(H(2))

    def test_gates_passed_to_constructor_are_validated(self):
        with pytest.raises(ValueError):
            Circuit(2, [CPHASE(0, 5, 0.1)])

    def test_builder_methods_chain(self):
        c = Circuit(3).h(0).cphase(0, 1).swap(1, 2).cnot(0, 2).rz(1, 0.3)
        assert len(c) == 5

    def test_extend(self):
        c = Circuit(3)
        c.extend([H(0), H(1), H(2)])
        assert c.count(GateKind.H) == 3


class TestInspection:
    def test_count_by_kind(self):
        c = Circuit(3).h(0).cphase(0, 1).cphase(1, 2)
        assert c.count(GateKind.CPHASE) == 2
        assert c.count(GateKind.H) == 1
        assert c.count(GateKind.SWAP) == 0

    def test_two_qubit_gates(self):
        c = Circuit(3).h(0).cphase(0, 1).swap(1, 2)
        assert len(c.two_qubit_gates()) == 2

    def test_qubits_used(self):
        c = Circuit(5).h(1).cphase(1, 3)
        assert c.qubits_used() == (1, 3)

    def test_depth_sequential_on_one_qubit(self):
        c = Circuit(1).h(0).rz(0, 0.1).h(0)
        assert c.depth() == 3

    def test_depth_parallel_on_disjoint_qubits(self):
        c = Circuit(4).h(0).h(1).h(2).h(3)
        assert c.depth() == 1

    def test_depth_mixed(self):
        c = Circuit(3).h(0).cphase(0, 1).cphase(1, 2).h(2)
        # h(0); cp(0,1); cp(1,2); h(2) chain through shared qubits
        assert c.depth() == 4

    def test_interaction_pairs(self):
        c = Circuit(4).cphase(0, 1).cphase(2, 3).cphase(1, 0)
        assert c.interaction_pairs() == {(0, 1), (2, 3)}

    def test_iteration_and_indexing(self):
        c = Circuit(2).h(0).h(1)
        assert list(c)[1] == c[1] == H(1)


class TestTransformation:
    def test_copy_is_independent(self):
        c = Circuit(2).h(0)
        d = c.copy()
        d.h(1)
        assert len(c) == 1 and len(d) == 2

    def test_remapped(self):
        c = Circuit(3).cphase(0, 2)
        d = c.remapped([2, 1, 0])
        assert d[0].qubits == (2, 0)

    def test_remapped_requires_full_mapping(self):
        with pytest.raises(ValueError):
            Circuit(3).remapped([0, 1])

    def test_reversed_order(self):
        c = Circuit(2).h(0).h(1)
        assert [g.qubits for g in c.reversed()] == [(1,), (0,)]

    def test_without_drops_kinds(self):
        c = Circuit(3).h(0).swap(0, 1).cphase(1, 2)
        d = c.without([GateKind.SWAP])
        assert d.count(GateKind.SWAP) == 0
        assert len(d) == 2
