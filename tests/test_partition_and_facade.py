"""Tests for the partition helpers and the QFT compile facade."""

import pytest

from helpers import assert_valid_qft
from repro.arch import (
    CaterpillarTopology,
    GridTopology,
    HeavyHexTopology,
    LatticeSurgeryTopology,
    LNNTopology,
    SycamoreTopology,
    Topology,
)
from repro.circuit import GateKind, qft_circuit
from repro.core import (
    GreedyRouterMapper,
    GridQFTMapper,
    HeavyHexQFTMapper,
    LatticeSurgeryQFTMapper,
    LNNQFTMapper,
    SycamoreQFTMapper,
    mapper_for,
    partitioned_qft_for,
    unit_partition_for,
)
from repro.verify import circuit_unitary, unitaries_equal_up_to_phase

import repro


def _qft(topo):
    return repro.compile(
        workload="qft", architecture=topo, approach="ours", verify=False
    ).mapped


class TestUnitPartition:
    def test_sycamore_partition_matches_units(self):
        topo = SycamoreTopology(4)
        part = unit_partition_for(topo)
        assert [c.size for c in part.children] == [8, 8]

    def test_lattice_partition_matches_rows(self):
        topo = LatticeSurgeryTopology(3)
        part = unit_partition_for(topo)
        assert [c.size for c in part.children] == [3, 3, 3]

    def test_grid_partition_matches_rows(self):
        topo = GridTopology(2, 5)
        part = unit_partition_for(topo)
        assert [c.size for c in part.children] == [5, 5]

    def test_line_has_single_unit(self):
        part = unit_partition_for(LNNTopology(7))
        assert part.children == [] and part.size == 7

    def test_partitioned_circuit_equivalent_to_textbook(self):
        topo = GridTopology(2, 3)
        circ = partitioned_qft_for(topo)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(circ), circuit_unitary(qft_circuit(6))
        )

    def test_partitioned_circuit_has_same_gate_counts(self):
        topo = SycamoreTopology(4)
        circ = partitioned_qft_for(topo, relaxed_ie=True)
        n = topo.num_qubits
        assert circ.count(GateKind.H) == n
        assert circ.count(GateKind.CPHASE) == n * (n - 1) // 2


class TestMapperFacade:
    @pytest.mark.parametrize(
        "topo_factory,mapper_cls",
        [
            (lambda: LNNTopology(6), LNNQFTMapper),
            (lambda: CaterpillarTopology.regular_groups(2), HeavyHexQFTMapper),
            (lambda: HeavyHexTopology(2, 7), HeavyHexQFTMapper),
            (lambda: SycamoreTopology(4), SycamoreQFTMapper),
            (lambda: LatticeSurgeryTopology(3), LatticeSurgeryQFTMapper),
            (lambda: GridTopology(3, 3), GridQFTMapper),
        ],
        ids=["lnn", "caterpillar", "heavyhex", "sycamore", "lattice", "grid"],
    )
    def test_dispatch(self, topo_factory, mapper_cls):
        topo = topo_factory()
        assert isinstance(mapper_for(topo), mapper_cls)

    def test_unknown_topology_falls_back_to_greedy_router(self):
        star = Topology(5, [(0, i) for i in range(1, 5)])
        assert isinstance(mapper_for(star), GreedyRouterMapper)
        mapped = _qft(star)
        assert_valid_qft(mapped, 5)

    @pytest.mark.parametrize(
        "topo_factory",
        [
            lambda: LNNTopology(6),
            lambda: CaterpillarTopology.regular_groups(2),
            lambda: SycamoreTopology(4),
            lambda: LatticeSurgeryTopology(4),
            lambda: GridTopology(4, 4),
        ],
        ids=["lnn", "heavyhex", "sycamore", "lattice", "grid"],
    )
    def test_compile_facade_end_to_end(self, topo_factory):
        topo = topo_factory()
        mapped = _qft(topo)
        assert_valid_qft(mapped, topo.num_qubits)

    def test_grid_note_lattice_is_not_dispatched_to_grid(self):
        # LatticeSurgeryTopology is not a GridTopology subclass; make sure the
        # FT cost model is the one applied
        topo = LatticeSurgeryTopology(3)
        mapped = _qft(topo)
        assert mapped.depth() > mapped.unit_depth()
