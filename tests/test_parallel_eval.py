"""Tests for the parallel evaluation harness (repro.eval.parallel)."""

import pytest

from repro.eval import ResultCache, run_cell
from repro.eval.experiments import QUICK, specs_figure27, specs_table1
from repro.eval.parallel import CellSpec, run_cells


def _metrics(results):
    return [
        (r.approach, r.architecture, r.status, r.depth, r.swap_count, r.verified)
        for r in results
    ]


class TestRunCells:
    def test_order_matches_spec_order(self):
        specs = [
            CellSpec.make("ours", "heavyhex", 2),
            CellSpec.make("sabre", "grid", 2, seed=1),
            CellSpec.make("lnn", "lattice", 3),
        ]
        results = run_cells(specs)
        assert [r.approach for r in results] == ["ours", "sabre", "lnn"]
        assert all(r.ok for r in results)

    def test_jobs_do_not_change_results(self):
        specs = specs_figure27(seeds=(0, 1, 2, 3), m=3)
        serial = run_cells(specs, jobs=1)
        parallel = run_cells(specs, jobs=2)
        assert _metrics(serial) == _metrics(parallel)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_cells([], jobs=0)

    def test_parallel_with_cache_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = specs_figure27(seeds=(0, 1, 2), m=2)
        cold = run_cells(specs, jobs=2, cache=cache)
        warm = run_cells(specs, jobs=2, cache=cache)
        assert _metrics(cold) == _metrics(warm)
        assert cache.stats()["hits"] == 3

    def test_error_cell_does_not_kill_the_sweep(self):
        # odd Sycamore size is invalid; the sweep must carry on
        specs = [
            CellSpec.make("ours", "sycamore", 2),
            CellSpec.make("ours", "sycamore", 9),
            CellSpec.make("ours", "sycamore", 4),
        ]
        results = run_cells(specs, jobs=2)
        assert [r.status for r in results] == ["ok", "error", "ok"]
        assert "even" in results[1].message


class TestRunCellErrors:
    def test_architecture_error_is_a_result_not_a_traceback(self):
        res = run_cell("ours", "sycamore", 9)
        assert res.status == "error"
        assert not res.ok
        assert "even" in res.message
        assert res.architecture == "9*9 Sycamore"

    def test_unknown_approach_still_raises(self):
        with pytest.raises(ValueError):
            run_cell("magic", "grid", 3)

    def test_unknown_kind_still_raises(self):
        # a typo'd kind is a caller bug, not a per-cell failure
        with pytest.raises(ValueError, match="unknown architecture kind"):
            run_cell("ours", "hexheavy", 3)

    def test_typoed_kwarg_raises_instead_of_running_with_defaults(self):
        with pytest.raises(ValueError, match="sede"):
            run_cell("sabre", "grid", 2, sede=3)

    def test_error_message_reaches_the_rendered_table(self):
        from repro.eval import format_results

        text = format_results([run_cell("ours", "sycamore", 9)])
        assert "even number" in text


class TestExperimentSpecs:
    def test_table1_spec_count(self):
        specs = specs_table1(QUICK)
        # 9 cells x 3 approaches
        assert len(specs) == 27

    def test_specs_are_picklable_and_hashable(self):
        import pickle

        spec = CellSpec.make("sabre", "grid", 6, seed=3, rename="sabre-seed3")
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, spec}) == 1
