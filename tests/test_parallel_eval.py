"""Tests for the parallel evaluation harness (repro.eval.parallel)."""

import pytest

from repro.eval import ResultCache, run_cell
from repro.eval.experiments import QUICK, specs_figure27, specs_table1
from repro.eval.executors import run_specs
from repro.eval.parallel import CellSpec, _topology_chunks, run_cells  # repro-lint: ignore[deprecated-api] -- shim-contract test
from repro.eval.runners import architecture_key, cached_topology


def _metrics(results):
    return [
        (r.approach, r.architecture, r.status, r.depth, r.swap_count, r.verified)
        for r in results
    ]


class TestRunSpecs:
    def test_order_matches_spec_order(self):
        specs = [
            CellSpec.make("ours", "heavyhex", 2),
            CellSpec.make("sabre", "grid", 2, seed=1),
            CellSpec.make("lnn", "lattice", 3),
        ]
        results = run_specs(specs)
        assert [r.approach for r in results] == ["ours", "sabre", "lnn"]
        assert all(r.ok for r in results)

    def test_jobs_do_not_change_results(self):
        specs = specs_figure27(seeds=(0, 1, 2, 3), m=3)
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=2)
        assert _metrics(serial) == _metrics(parallel)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_specs([], jobs=0)

    def test_parallel_with_cache_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = specs_figure27(seeds=(0, 1, 2), m=2)
        cold = run_specs(specs, jobs=2, cache=cache)
        warm = run_specs(specs, jobs=2, cache=cache)
        assert _metrics(cold) == _metrics(warm)
        assert cache.stats()["hits"] == 3

    def test_error_cell_does_not_kill_the_sweep(self):
        # odd Sycamore size is invalid; the sweep must carry on
        specs = [
            CellSpec.make("ours", "sycamore", 2),
            CellSpec.make("ours", "sycamore", 9),
            CellSpec.make("ours", "sycamore", 4),
        ]
        results = run_specs(specs, jobs=2)
        assert [r.status for r in results] == ["ok", "error", "ok"]
        assert "even" in results[1].message


class TestRunCellErrors:
    def test_architecture_error_is_a_result_not_a_traceback(self):
        res = run_cell("ours", "sycamore", 9)
        assert res.status == "error"
        assert not res.ok
        assert "even" in res.message
        assert res.architecture == "9*9 Sycamore"

    def test_unknown_approach_still_raises(self):
        with pytest.raises(ValueError):
            run_cell("magic", "grid", 3)

    def test_unknown_kind_still_raises(self):
        # a typo'd kind is a caller bug, not a per-cell failure
        with pytest.raises(ValueError, match="unknown architecture kind"):
            run_cell("ours", "hexheavy", 3)

    def test_typoed_kwarg_raises_instead_of_running_with_defaults(self):
        with pytest.raises(ValueError, match="sede"):
            run_cell("sabre", "grid", 2, sede=3)

    def test_error_message_reaches_the_rendered_table(self):
        from repro.eval import format_results

        text = format_results([run_cell("ours", "sycamore", 9)])
        assert "even number" in text


class TestTopologyGrouping:
    def test_grouped_results_identical_to_serial_ungrouped(self):
        # mixed topologies + a seed sweep sharing one topology
        specs = [
            CellSpec.make("ours", "heavyhex", 2),
            CellSpec.make("sabre", "grid", 3, seed=0),
            CellSpec.make("sabre", "grid", 3, seed=1),
            CellSpec.make("lnn", "lattice", 3),
            CellSpec.make("sabre", "grid", 3, seed=2),
            CellSpec.make("ours", "heavyhex", 3),
        ]
        ungrouped = run_specs(specs, jobs=1, group_topologies=False)
        grouped = run_specs(specs, jobs=2, group_topologies=True)
        assert _metrics(ungrouped) == _metrics(grouped)

    def test_chunks_group_by_canonical_topology(self):
        specs = [
            CellSpec.make("ours", "heavyhex", 2),
            CellSpec.make("sabre", "heavy-hex", 2),  # synonym: same topology
            CellSpec.make("ours", "grid", 3),
        ]
        chunks = _topology_chunks(specs, [0, 1, 2], jobs=1)
        keyed = {tuple(c) for c in chunks}
        assert keyed == {(0, 1), (2,)}

    def test_chunks_split_single_topology_group_across_jobs(self):
        specs = [CellSpec.make("sabre", "grid", 2, seed=s) for s in range(5)]
        chunks = _topology_chunks(specs, list(range(5)), jobs=2)
        assert sorted(i for c in chunks for i in c) == list(range(5))
        assert len(chunks) == 2  # saturate the pool, not one worker
        assert {len(c) for c in chunks} == {2, 3}

    def test_architecture_key_normalises_synonyms(self):
        assert architecture_key("heavy-hex", 4) == architecture_key("heavyhex", 4)
        assert architecture_key("caterpillar", 4) == architecture_key("heavyhex", 4)
        assert architecture_key("ft", 5) == architecture_key("lattice", 5)
        assert architecture_key("grid", 3) != architecture_key("grid", 4)

    def test_cached_topology_returns_shared_instance(self):
        a = cached_topology("heavyhex", 2)
        b = cached_topology("heavy-hex", 2)
        assert a is b
        assert a.num_qubits == 10

    def test_cached_topology_returns_none_on_bad_architecture(self):
        assert cached_topology("sycamore", 9) is None  # odd size is invalid

    def test_injected_topology_used_by_run_cell(self):
        topo = cached_topology("grid", 3)
        res = run_cell("sabre", "grid", 3, topology=topo)
        assert res.ok
        assert res.num_qubits == 9

    def test_chunk_crash_preserves_finished_results(self, tmp_path):
        # A caller bug (unknown approach) must still raise, but cells that
        # finished before it -- in the same chunk or other chunks -- must
        # have been recorded in the cache, not discarded with the chunk.
        cache = ResultCache(tmp_path)
        specs = [
            CellSpec.make("sabre", "grid", 2, seed=0),
            CellSpec.make("magic", "grid", 2),
            CellSpec.make("sabre", "grid", 2, seed=2),
        ]
        with pytest.raises(ValueError):
            run_specs(specs, jobs=2, cache=cache)
        assert len(cache) == 2


class TestCellTimeout:
    def test_satmap_cell_times_out_via_harness_budget(self):
        # 4x4 Sycamore is far beyond the exact search's reach: without a
        # budget this cell would run (effectively) forever.
        specs = [CellSpec.make("satmap", "sycamore", 4, timeout_s=0.3)]
        (res,) = run_specs(specs)
        assert res.status == "timeout"
        assert res.compile_time_s is not None

    def test_budget_applies_to_any_approach(self):
        res = run_cell("sabre", "lattice", 10, timeout_s=0.05)
        assert res.status == "timeout"

    def test_fast_cell_unaffected_by_generous_budget(self):
        specs = [CellSpec.make("sabre", "grid", 2, timeout_s=120.0)]
        (res,) = run_specs(specs)
        assert res.ok and res.verified

    def test_timeout_result_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [CellSpec.make("satmap", "sycamore", 4, timeout_s=0.2)]
        (res,) = run_specs(specs, cache=cache)
        assert res.status == "timeout"
        assert len(cache) == 0


class TestDeprecatedShim:
    def test_run_cells_warns_and_delegates(self):
        """The retired entry point still works, but announces run_specs."""

        specs = [CellSpec.make("sabre", "grid", 2, seed=1)]
        with pytest.warns(DeprecationWarning, match="run_specs"):
            shim = run_cells(specs)  # repro-lint: ignore[deprecated-api]
        assert _metrics(shim) == _metrics(run_specs(specs))


class TestExperimentSpecs:
    def test_table1_spec_count(self):
        specs = specs_table1(QUICK)
        # 9 cells x 3 approaches
        assert len(specs) == 27

    def test_specs_are_picklable_and_hashable(self):
        import pickle

        spec = CellSpec.make("sabre", "grid", 6, seed=3, rename="sabre-seed3")
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, spec}) == 1
