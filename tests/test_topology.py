"""Tests for the generic Topology base class."""

import numpy as np
import pytest

from repro.arch import Topology
from repro.circuit import GateKind, Op


def make_triangle_plus_tail():
    # 0-1, 1-2, 0-2 triangle with a tail 2-3-4
    return Topology(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)], name="tri-tail")


class TestConstruction:
    def test_edge_normalisation_and_dedup(self):
        t = Topology(3, [(1, 0), (0, 1), (1, 2)])
        assert t.num_edges() == 2
        assert t.has_edge(0, 1) and t.has_edge(1, 0)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Topology(3, [(1, 1)])

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError):
            Topology(3, [(0, 3)])

    def test_rejects_zero_qubits(self):
        with pytest.raises(ValueError):
            Topology(0, [])

    def test_neighbors_sorted(self):
        t = make_triangle_plus_tail()
        assert t.neighbors(2) == [0, 1, 3]
        assert t.degree(2) == 3

    def test_edge_list_sorted(self):
        t = Topology(3, [(2, 1), (1, 0)])
        assert t.edge_list() == [(0, 1), (1, 2)]


class TestDistances:
    def test_distance_matrix_symmetric(self):
        t = make_triangle_plus_tail()
        d = t.distance_matrix()
        assert np.allclose(d, d.T)

    def test_distances(self):
        t = make_triangle_plus_tail()
        assert t.distance(0, 1) == 1
        assert t.distance(0, 3) == 2
        assert t.distance(0, 4) == 3
        assert t.distance(2, 2) == 0

    def test_shortest_path_endpoints_and_adjacency(self):
        t = make_triangle_plus_tail()
        path = t.shortest_path(0, 4)
        assert path[0] == 0 and path[-1] == 4
        assert len(path) == t.distance(0, 4) + 1
        for a, b in zip(path, path[1:]):
            assert t.has_edge(a, b)

    def test_shortest_path_same_node(self):
        t = make_triangle_plus_tail()
        assert t.shortest_path(3, 3) == [3]

    def test_disconnected_path_raises(self):
        t = Topology(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            t.shortest_path(0, 3)

    def test_is_connected(self):
        assert make_triangle_plus_tail().is_connected()
        assert not Topology(4, [(0, 1), (2, 3)]).is_connected()


class TestMisc:
    def test_default_latency_is_one(self):
        t = make_triangle_plus_tail()
        assert t.swap_latency(0, 1) == 1
        assert t.cphase_latency(0, 1) == 1
        assert t.op_latency(Op(GateKind.H, (0,), (0,))) == 1

    def test_to_networkx(self):
        g = make_triangle_plus_tail().to_networkx()
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 5

    def test_subtopology_relabels(self):
        t = make_triangle_plus_tail()
        sub = t.subtopology([2, 3, 4])
        assert sub.num_qubits == 3
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert not sub.has_edge(0, 2)
