"""Tests for the inter-unit (QFT-IE) interaction engine (Sections 5/6)."""

import pytest

from repro.arch import GridTopology, LatticeSurgeryTopology, SycamoreTopology
from repro.circuit import MappingBuilder
from repro.core import QFTDependenceTracker, bipartite_all_to_all
from repro.core.dependence import QFTDependenceTracker as Tracker


def _grid_setup(cols, rows=2):
    """Two adjacent rows of a grid, logical qubits 0..cols-1 on the top row and
    cols..2*cols-1 on the bottom row, with the top row's H already done."""

    topo = GridTopology(rows, cols)
    line_a = topo.row_qubits(0)
    line_b = topo.row_qubits(1)
    layout = line_a + line_b
    n = 2 * cols
    builder = MappingBuilder(topo, layout, num_logical=n)
    tracker = QFTDependenceTracker(n)
    # make the IE legal: do the intra-unit work of the first unit logically
    for i in range(cols):
        tracker.mark_h(i)
        builder.h(builder.phys_of(i))
        for j in range(i + 1, cols):
            tracker.mark_cphase(i, j)
    links = [(c, c) for c in range(cols)]
    return topo, builder, tracker, line_a, line_b, links


def _cross_pairs_done(tracker, cols):
    return all(
        tracker.pair_is_done(i, j)
        for i in range(cols)
        for j in range(cols, 2 * cols)
    )


class TestGridStyleIE:
    @pytest.mark.parametrize("cols", [2, 3, 4, 5, 6, 8])
    def test_offset_pattern_covers_all_cross_pairs(self, cols):
        topo, builder, tracker, la, lb, links = _grid_setup(cols)
        stats = bipartite_all_to_all(
            builder, tracker, la, lb, links, offset_a=0, offset_b=1
        )
        assert _cross_pairs_done(tracker, cols)
        assert stats["fallback_swaps"] == 0

    @pytest.mark.parametrize("cols", [3, 4, 6])
    def test_offset_pattern_needs_no_fixups(self, cols):
        topo, builder, tracker, la, lb, links = _grid_setup(cols)
        stats = bipartite_all_to_all(
            builder, tracker, la, lb, links, offset_a=0, offset_b=1
        )
        assert stats["missed_after_pattern"] == 0
        assert stats["fixup_rounds"] == 0

    @pytest.mark.parametrize("cols", [3, 4, 6])
    def test_synced_pattern_on_vertical_links_needs_help(self, cols):
        """With identical offsets the same-column partner never changes; the
        engine must fall back to fix-ups / routing -- this is exactly why the
        paper starts the bottom row one step late (Fig. 16)."""

        topo, builder, tracker, la, lb, links = _grid_setup(cols)
        stats = bipartite_all_to_all(
            builder, tracker, la, lb, links, offset_a=0, offset_b=0
        )
        assert _cross_pairs_done(tracker, cols)  # still correct...
        assert stats["missed_after_pattern"] > 0  # ...but the pattern alone missed pairs

    @pytest.mark.parametrize("cols", [3, 4, 5])
    def test_strict_mode_is_correct_but_slower(self, cols):
        topo_r, builder_r, tracker_r, la, lb, links = _grid_setup(cols)
        relaxed = bipartite_all_to_all(
            builder_r, tracker_r, la, lb, links, offset_a=0, offset_b=1
        )
        topo_s, builder_s, tracker_s, la, lb, links = _grid_setup(cols)
        strict = bipartite_all_to_all(
            builder_s, tracker_s, la, lb, links, offset_a=0, offset_b=1, strict=True
        )
        assert _cross_pairs_done(tracker_s, cols)
        assert len(builder_s.ops) >= len(builder_r.ops)

    def test_no_pending_pairs_is_a_noop(self):
        topo, builder, tracker, la, lb, links = _grid_setup(3)
        bipartite_all_to_all(builder, tracker, la, lb, links, offset_b=1)
        before = len(builder.ops)
        stats = bipartite_all_to_all(builder, tracker, la, lb, links, offset_b=1)
        assert stats["target_pairs"] == 0
        assert len(builder.ops) == before

    def test_invalid_inter_link_rejected(self):
        topo, builder, tracker, la, lb, links = _grid_setup(3)
        with pytest.raises(ValueError):
            bipartite_all_to_all(builder, tracker, la, lb, [(0, 2)])

    def test_out_of_range_link_rejected(self):
        topo, builder, tracker, la, lb, links = _grid_setup(3)
        with pytest.raises(ValueError):
            bipartite_all_to_all(builder, tracker, la, lb, [(0, 9)])

    def test_uncoupled_line_rejected(self):
        topo = GridTopology(2, 3)
        builder = MappingBuilder(topo, [0, 1, 2, 3, 4, 5], num_logical=6)
        tracker = QFTDependenceTracker(6)
        with pytest.raises(ValueError):
            bipartite_all_to_all(builder, tracker, [0, 2, 1], [3, 4, 5], [(0, 0)])


class TestSycamoreStyleIE:
    def _setup(self, m):
        topo = SycamoreTopology(m)
        line_a = topo.unit_line(0)
        line_b = topo.unit_line(1)
        layout = line_a + line_b
        n = 4 * m
        builder = MappingBuilder(topo, layout, num_logical=n)
        tracker = QFTDependenceTracker(n)
        for i in range(2 * m):
            tracker.mark_h(i)
            builder.h(builder.phys_of(i))
            for j in range(i + 1, 2 * m):
                tracker.mark_cphase(i, j)
        links = []
        for ia, pa in enumerate(line_a):
            for ib, pb in enumerate(line_b):
                if topo.has_edge(pa, pb):
                    links.append((ia, ib))
        return topo, builder, tracker, line_a, line_b, links

    @pytest.mark.parametrize("m", [4, 6, 8])
    def test_synced_pattern_plus_fixups_covers_everything(self, m):
        topo, builder, tracker, la, lb, links = self._setup(m)
        stats = bipartite_all_to_all(
            builder, tracker, la, lb, links, offset_a=0, offset_b=0
        )
        unit = 2 * m
        assert all(
            tracker.pair_is_done(i, j)
            for i in range(unit)
            for j in range(unit, 2 * unit)
        )
        # the travel pattern misses exactly the same-column pairs, which the
        # constant-depth fix-up then handles without routed fallback
        assert stats["missed_after_pattern"] == unit
        assert stats["fallback_swaps"] == 0
        assert stats["fixup_rounds"] >= 1
