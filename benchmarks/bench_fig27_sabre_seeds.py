"""Figure 27: SABRE's output depends on the random seed.

Ten seeds on the small grid instance; the benchmark records each seed's depth
and SWAP count and asserts that the outputs are not all identical (which is
the figure's point: the heuristic baseline is not stable, unlike the
analytical construction)."""

import pytest

from repro.arch import GridTopology
from repro.baselines import SabreMapper
from repro.verify import check_mapped_qft_structure

SEEDS = list(range(10))


@pytest.mark.parametrize("seed", SEEDS)
def test_fig27_sabre_seed(benchmark, seed):
    topo = GridTopology(3, 3)

    def compile_once():
        return SabreMapper(topo, seed=seed).map_qft()

    mapped = benchmark.pedantic(compile_once, rounds=1, iterations=1)
    assert check_mapped_qft_structure(mapped, topo.num_qubits).ok
    benchmark.extra_info["seed"] = seed
    benchmark.extra_info["depth"] = mapped.unit_depth()
    benchmark.extra_info["swaps"] = mapped.swap_count()


def test_fig27_outputs_vary_across_seeds(benchmark):
    topo = GridTopology(3, 3)

    def sweep():
        return {
            (SabreMapper(topo, seed=s).map_qft().swap_count(),
             SabreMapper(topo, seed=s).map_qft().unit_depth())
            for s in SEEDS
        }

    distinct = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["distinct_outcomes"] = len(distinct)
    assert len(distinct) > 1
