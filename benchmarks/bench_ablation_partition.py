"""Ablation (Insight 2): what does sub-kernel partitioning buy on the FT grid?

Compares the unit-based mapper (ours) against LNN along a Hamiltonian path
(no partitioning, latency-oblivious) and against the naive greedy router, on
SWAP count and depth."""

import pytest

from conftest import FULL, bench_cell

SIZES = [6, 8, 10, 12] if FULL else [6, 8, 10]


@pytest.mark.parametrize("m", SIZES)
def test_partition_ablation_ours(benchmark, m):
    bench_cell(benchmark, "ours", "lattice", m)


@pytest.mark.parametrize("m", SIZES)
def test_partition_ablation_lnn(benchmark, m):
    bench_cell(benchmark, "lnn", "lattice", m)


@pytest.mark.parametrize("m", [6, 8])
def test_partition_ablation_greedy(benchmark, m):
    bench_cell(benchmark, "greedy", "lattice", m)


@pytest.mark.parametrize("m", [8, 10])
def test_unit_mapper_saves_swaps_over_lnn(benchmark, m):
    ours = bench_cell(benchmark, "ours", "lattice", m)
    from repro.eval import run_cell

    lnn = run_cell("lnn", "lattice", m)
    benchmark.extra_info["ours_swaps"] = ours.swap_count
    benchmark.extra_info["lnn_swaps"] = lnn.swap_count
    assert ours.swap_count < lnn.swap_count
