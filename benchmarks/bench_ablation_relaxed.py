"""Ablation (Insight 1 / Appendix 5-7): relaxed vs strict QFT-IE ordering.

The paper states the relaxed inter-unit schedule is about twice as fast as the
strict one; in our implementation the strict variant additionally pays for
generic completion of the pairs its restricted firing rule misses, so the gap
is at least 2x (EXPERIMENTS.md discusses the difference)."""

import pytest

import repro
from repro.arch import LatticeSurgeryTopology, SycamoreTopology
from repro.verify import check_mapped_qft_structure


def _qft(topo, *, strict_ie=False):
    return repro.compile(
        workload="qft", architecture=topo, approach="ours",
        verify=False, strict_ie=strict_ie,
    ).mapped

SYCAMORE_SIZES = [4, 6]
LATTICE_SIZES = [6, 8]


def _run(benchmark, topo, strict):
    def compile_once():
        return _qft(topo, strict_ie=strict)

    mapped = benchmark.pedantic(compile_once, rounds=1, iterations=1)
    assert check_mapped_qft_structure(mapped, topo.num_qubits).ok
    benchmark.extra_info["strict_ie"] = strict
    benchmark.extra_info["qubits"] = topo.num_qubits
    benchmark.extra_info["depth"] = mapped.depth()
    benchmark.extra_info["swaps"] = mapped.swap_count()
    return mapped


@pytest.mark.parametrize("m", SYCAMORE_SIZES)
@pytest.mark.parametrize("strict", [False, True], ids=["relaxed", "strict"])
def test_ablation_sycamore_ie(benchmark, m, strict):
    _run(benchmark, SycamoreTopology(m), strict)


@pytest.mark.parametrize("m", LATTICE_SIZES)
@pytest.mark.parametrize("strict", [False, True], ids=["relaxed", "strict"])
def test_ablation_lattice_ie(benchmark, m, strict):
    _run(benchmark, LatticeSurgeryTopology(m), strict)


@pytest.mark.parametrize("m", [4, 6])
def test_relaxed_is_at_least_twice_as_shallow(benchmark, m):
    topo = SycamoreTopology(m)

    def both():
        relaxed = _qft(topo, strict_ie=False)
        strict = _qft(topo, strict_ie=True)
        return relaxed, strict

    relaxed, strict = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["relaxed_depth"] = relaxed.depth()
    benchmark.extra_info["strict_depth"] = strict.depth()
    assert strict.depth() >= 2 * relaxed.depth()
