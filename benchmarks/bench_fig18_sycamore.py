"""Figure 18: depth and #SWAP vs qubit count on Sycamore, ours vs SABRE."""

import pytest

from conftest import FULL, bench_cell

SIZES = [2, 4, 6, 8, 10] if FULL else [2, 4, 6, 8]
SABRE_SIZES = SIZES if FULL else [2, 4, 6]


@pytest.mark.parametrize("m", SIZES)
def test_fig18_ours(benchmark, m):
    result = bench_cell(benchmark, "ours", "sycamore", m)
    n = result.num_qubits
    # linear-depth guarantee of Section 5 (paper constant 7, plus slack)
    assert result.depth <= 12 * n + 40


@pytest.mark.parametrize("m", SABRE_SIZES)
def test_fig18_sabre(benchmark, m):
    bench_cell(benchmark, "sabre", "sycamore", m)
