"""Table 1: ours vs SATMAP vs SABRE on Sycamore / heavy-hex / lattice surgery.

Each benchmark is one cell of the table; compilation time is the benchmark
measurement and depth / #SWAP are attached as extra info.  SATMAP only gets
the smallest instance per architecture (it times out beyond ~10 qubits, which
is exactly what the paper reports); SABRE is capped by default because the
pure-Python re-implementation is slow at lattice-surgery sizes.
"""

import pytest

from conftest import FULL, bench_cell

SYCAMORE_SIZES = [2, 4, 6]
HEAVYHEX_GROUPS = [2, 4, 6]
LATTICE_SIZES = [10, 20, 30] if FULL else [10]
SABRE_LATTICE_SIZES = [10, 20, 30] if FULL else [6, 8]


@pytest.mark.parametrize("m", SYCAMORE_SIZES)
def test_table1_ours_sycamore(benchmark, m):
    bench_cell(benchmark, "ours", "sycamore", m)


@pytest.mark.parametrize("m", SYCAMORE_SIZES)
def test_table1_sabre_sycamore(benchmark, m):
    bench_cell(benchmark, "sabre", "sycamore", m)


def test_table1_satmap_sycamore_2x2(benchmark):
    bench_cell(benchmark, "satmap", "sycamore", 2, timeout_s=60)


@pytest.mark.parametrize("g", HEAVYHEX_GROUPS)
def test_table1_ours_heavyhex(benchmark, g):
    bench_cell(benchmark, "ours", "heavyhex", g)


@pytest.mark.parametrize("g", HEAVYHEX_GROUPS)
def test_table1_sabre_heavyhex(benchmark, g):
    bench_cell(benchmark, "sabre", "heavyhex", g)


def test_table1_satmap_heavyhex_10(benchmark):
    # 10 qubits: the paper reports SATMAP finishing in ~440 s; our exact
    # stand-in gets a 60 s budget and is allowed to report TLE.
    result = bench_cell(benchmark, "satmap", "heavyhex", 2, timeout_s=60)
    assert result.status in ("ok", "timeout")


@pytest.mark.parametrize("m", LATTICE_SIZES)
def test_table1_ours_lattice(benchmark, m):
    bench_cell(benchmark, "ours", "lattice", m)


@pytest.mark.parametrize("m", SABRE_LATTICE_SIZES)
def test_table1_sabre_lattice(benchmark, m):
    bench_cell(benchmark, "sabre", "lattice", m)
