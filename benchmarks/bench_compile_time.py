"""Section 7.1.1 / Table 1 "CT" column: compilation-time scaling.

The paper's point: the analytical construction has essentially no compilation
cost and it does not grow the way SATMAP's (exponential) or SABRE's
(polynomial, but resolution-dependent) does.  The benchmark times the three
approaches on a growing heavy-hex instance and, for ours, asserts the cost
stays near-instant.
"""

import pytest

from conftest import FULL, bench_cell

GROUPS = [2, 4, 8, 12, 16, 20] if FULL else [2, 4, 8, 12]
SABRE_GROUPS = [2, 4, 8, 12] if FULL else [2, 4, 8]


@pytest.mark.parametrize("groups", GROUPS)
def test_compile_time_ours(benchmark, groups):
    result = bench_cell(benchmark, "ours", "heavyhex", groups)
    assert result.compile_time_s < 10.0


@pytest.mark.parametrize("groups", SABRE_GROUPS)
def test_compile_time_sabre(benchmark, groups):
    bench_cell(benchmark, "sabre", "heavyhex", groups)


def test_compile_time_satmap_times_out_beyond_ten_qubits(benchmark):
    result = bench_cell(benchmark, "satmap", "heavyhex", 3, timeout_s=5)
    assert result.status == "timeout"
