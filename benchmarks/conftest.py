"""Shared helpers for the benchmark harness.

Every benchmark compiles a QFT instance exactly once per (approach,
architecture, size) cell -- compilation is deterministic, so repeated timing
rounds would only measure noise while multiplying the wall-clock cost of the
suite.  The quality metrics the paper reports (depth, SWAP count, CPHASE
count) are attached to ``benchmark.extra_info`` so that
``pytest benchmarks/ --benchmark-only`` reproduces both axes of every figure:
compilation time *and* output quality.

Environment knobs:

* ``REPRO_BENCH_FULL=1``    -- run the paper-sized sweeps (SABRE at hundreds
  of qubits).  The delta-scored SABRE core (see ``repro.baselines.sabre``)
  routes these at a near-flat per-swap-iteration cost; for multi-core
  machines and incremental re-runs, prefer
  ``python -m repro.eval --profile paper --jobs N --cache DIR``, which groups
  cells by topology, fans them out over processes and skips anything already
  computed.  ``scripts/bench.py`` tracks the fixed micro-suite's wall times
  per commit (BENCH_compile_time.json).
"""

from __future__ import annotations

import os

import pytest

from repro.eval import run_cell
from repro.eval.runners import cached_topology

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_cell(benchmark, approach: str, kind: str, size: int, **kwargs):
    """Run one compilation cell under pytest-benchmark and record its metrics.

    The topology is resolved through the harness's shared memo (one instance
    -- and one distance matrix / SABRE table build -- per topology per
    process), so benchmark timings measure the mapper, not repeated
    architecture construction, exactly like a topology-grouped sweep.
    """

    topology = cached_topology(kind, size)
    result_holder = {}

    def compile_once():
        result_holder["result"] = run_cell(
            approach, kind, size, topology=topology, **kwargs
        )
        return result_holder["result"]

    benchmark.pedantic(compile_once, rounds=1, iterations=1)
    result = result_holder["result"]
    # run_cell reports bad cells (e.g. invalid architecture size) as
    # status="error" instead of raising; a benchmark timing a no-op must
    # still fail loudly.
    assert result.status != "error", f"benchmark cell failed: {result.message}"
    benchmark.extra_info["approach"] = result.approach
    benchmark.extra_info["architecture"] = result.architecture
    benchmark.extra_info["qubits"] = result.num_qubits
    benchmark.extra_info["status"] = result.status
    if result.ok:
        benchmark.extra_info["depth"] = result.depth
        benchmark.extra_info["swaps"] = result.swap_count
        benchmark.extra_info["cphase"] = result.cphase_count
        benchmark.extra_info["verified"] = bool(result.verified)
        assert result.verified, "benchmark produced an invalid QFT circuit"
    return result
