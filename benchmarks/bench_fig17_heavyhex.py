"""Figure 17: depth and #SWAP vs qubit count on heavy-hex, ours vs SABRE."""

import pytest

from conftest import FULL, bench_cell

GROUPS = [2, 4, 6, 8, 10, 12, 14, 16, 18, 20] if FULL else [2, 4, 6, 8, 10]
SABRE_GROUPS = GROUPS if FULL else [2, 4, 6, 8]


@pytest.mark.parametrize("groups", GROUPS)
def test_fig17_ours(benchmark, groups):
    result = bench_cell(benchmark, "ours", "heavyhex", groups)
    n = result.num_qubits
    # linear-depth guarantee of Section 4
    assert result.depth <= 7 * n + 20


@pytest.mark.parametrize("groups", SABRE_GROUPS)
def test_fig17_sabre(benchmark, groups):
    bench_cell(benchmark, "sabre", "heavyhex", groups)
