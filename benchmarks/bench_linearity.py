"""The linear-depth guarantee (abstract / Sections 4-6 complexity claims).

Compiles growing instances of each architecture with the analytical mapper and
records depth / N; the assertion is that the ratio stays bounded (heavy-hex
~5-6, Sycamore ~8-10, lattice surgery ~13-16 with our constants -- see
EXPERIMENTS.md for the comparison against the paper's 5N / 7N / 5N)."""

import pytest

from conftest import FULL, bench_cell

HEAVYHEX_GROUPS = [4, 8, 16, 32, 64] if FULL else [4, 8, 16, 24]
SYCAMORE_SIZES = [4, 6, 8, 10, 12] if FULL else [4, 6, 8, 10]
LATTICE_SIZES = [6, 8, 12, 16, 24, 32] if FULL else [6, 8, 12, 16]


@pytest.mark.parametrize("groups", HEAVYHEX_GROUPS)
def test_linearity_heavyhex(benchmark, groups):
    result = bench_cell(benchmark, "ours", "heavyhex", groups)
    ratio = result.depth / result.num_qubits
    benchmark.extra_info["depth_per_qubit"] = round(ratio, 2)
    assert ratio <= 7.0

@pytest.mark.parametrize("m", SYCAMORE_SIZES)
def test_linearity_sycamore(benchmark, m):
    result = bench_cell(benchmark, "ours", "sycamore", m)
    ratio = result.depth / result.num_qubits
    benchmark.extra_info["depth_per_qubit"] = round(ratio, 2)
    assert ratio <= 12.0


@pytest.mark.parametrize("m", LATTICE_SIZES)
def test_linearity_lattice(benchmark, m):
    result = bench_cell(benchmark, "ours", "lattice", m)
    ratio = result.depth / result.num_qubits
    benchmark.extra_info["depth_per_qubit"] = round(ratio, 2)
    assert ratio <= 20.0
