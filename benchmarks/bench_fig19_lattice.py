"""Figure 19: depth and #SWAP vs qubit count on the FT lattice-surgery backend,
ours vs SABRE vs the LNN (Hamiltonian path) baseline, 100 to 1024 qubits."""

import pytest

from conftest import FULL, bench_cell

SIZES = [10, 12, 16, 20, 24, 28, 32] if FULL else [10, 12, 16]
LNN_SIZES = SIZES
SABRE_SIZES = SIZES if FULL else [8, 10]


@pytest.mark.parametrize("m", SIZES)
def test_fig19_ours(benchmark, m):
    result = bench_cell(benchmark, "ours", "lattice", m)
    n = result.num_qubits
    # linear weighted depth (Section 6); our row-unit schedule's constant is
    # larger than the paper's 5N but must stay linear
    assert result.depth <= 20 * n + 60


@pytest.mark.parametrize("m", LNN_SIZES)
def test_fig19_lnn_baseline(benchmark, m):
    bench_cell(benchmark, "lnn", "lattice", m)


@pytest.mark.parametrize("m", SABRE_SIZES)
def test_fig19_sabre(benchmark, m):
    bench_cell(benchmark, "sabre", "lattice", m)
