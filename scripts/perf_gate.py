#!/usr/bin/env python
"""Perf-regression gate: fail CI when a pinned bench cell got >1.5x slower.

Compares a fresh ``scripts/bench.py --smoke`` output against the committed
baseline (``BENCH_baseline_smoke.json``) cell by cell.  Every ``status ==
"ok"`` cell of the baseline is *pinned*: it must still exist in the current
run, still be ok, and its wall-clock must stay within ``factor x baseline``
(plus a small absolute slack so micro-cells whose walls are interpreter
jitter cannot flap the gate).  Offending cells are reported individually --
the point of the gate is to name the regression, not just to go red.

The committed baseline is recorded with ``REPRO_SABRE_KERNEL=python`` (the
slowest supported engine), so both CI legs -- compiled kernel and forced
Python fallback -- are gated against the same numbers: the compiled leg
clears them comfortably, and the fallback leg cannot silently rot.

Exit status: 0 = within budget, 1 = regression (offenders listed),
2 = usage/IO error.

Usage::

    python scripts/perf_gate.py CURRENT.json [--baseline BENCH_baseline_smoke.json]
                                [--db STORE.db] [--factor 1.5] [--slack-s 0.05]

With ``--db`` the baseline comes from a SQLite experiment store instead of
the committed JSON: the latest recorded bench payload for the current run's
suite (optionally pinned to one commit via ``--db-commit``), reconstructed
cell-for-cell from ``bench_cells`` rows.  The committed-JSON baseline stays
as the fallback when the store is absent or holds no matching recording, so
CI cannot go silently ungated during the migration.  Whichever way the
baseline was resolved, a ``perf gate: baseline source: ...`` line names it
before any verdict -- pass, fail, store hit or JSON fallback alike.

The gate also pins the serve layer: ``scripts/serve_bench.py`` emits the
same ``groups``/``cells`` shape (one cell per load shape, ``compile_time_s``
= the shape's p50 latency), gated against the committed
``BENCH_baseline_serve_smoke.json`` by ``scripts/ci.sh --serve-only``.

Environment overrides (for slow/shared runners): ``REPRO_PERF_GATE_FACTOR``,
``REPRO_PERF_GATE_SLACK_S``, ``REPRO_PERF_BASELINE``; ``REPRO_PERF_GATE=off``
skips the gate entirely (prints a notice, exits 0).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: default committed baseline (see module docstring for how it is recorded)
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_baseline_smoke.json")


def _cells(payload: dict) -> dict:
    """Index a bench JSON: (group, workload, approach, kind, size, k) -> cell.

    ``k`` is the occurrence counter within the group for cells sharing the
    other five components (bench records carry no kwargs, so e.g. a future
    seed sweep would otherwise collapse to its last cell and silently unpin
    the rest).  Suites are fixed per mode, so occurrence order is stable
    between baseline and current runs.
    """

    out = {}
    for group in payload.get("groups", []):
        seen: dict = {}
        for cell in group.get("cells", []):
            base = (
                group.get("name"),
                cell.get("workload"),
                cell.get("approach"),
                cell.get("kind"),
                cell.get("size"),
            )
            k = seen.get(base, 0)
            seen[base] = k + 1
            out[base + (k,)] = cell
    return out


def _store_baseline(db_path: str, suite: str, commit: str | None) -> dict | None:
    """Latest recorded bench payload for ``suite`` from a store, or ``None``.

    Returns ``None`` (caller falls back to the committed JSON) when the
    store file is missing or holds no recording for the suite; the notice
    is printed by the caller so the fallback is always visible in CI logs.
    """

    if not os.path.isfile(db_path):
        return None
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.store import ExperimentStore

    with ExperimentStore(db_path) as store:
        return store.latest_baseline(suite, commit=commit)


def _fmt(key: tuple) -> str:
    group, workload, approach, kind, size, k = key
    tail = f" [#{k + 1}]" if k else ""
    return f"{group}: {workload}/{approach} on {kind}-{size}{tail}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="bench JSON produced by this run")
    parser.add_argument(
        "--baseline",
        default=os.environ.get("REPRO_PERF_BASELINE", DEFAULT_BASELINE),
        help="committed baseline JSON (default: BENCH_baseline_smoke.json)",
    )
    parser.add_argument(
        "--db",
        default=None,
        metavar="STORE.db",
        help="read the baseline from this SQLite experiment store (latest "
        "bench recording for the current suite); falls back to --baseline "
        "when the store is absent or empty",
    )
    parser.add_argument(
        "--db-commit",
        default=None,
        metavar="SHA",
        help="with --db: pin the baseline to the latest recording of this "
        "commit instead of the latest overall",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=float(os.environ.get("REPRO_PERF_GATE_FACTOR", "1.5")),
        help="max allowed wall-clock ratio per pinned cell (default 1.5)",
    )
    parser.add_argument(
        "--slack-s",
        type=float,
        default=float(os.environ.get("REPRO_PERF_GATE_SLACK_S", "0.05")),
        help="absolute slack added to each budget, seconds (default 0.05)",
    )
    args = parser.parse_args(argv)

    if os.environ.get("REPRO_PERF_GATE", "").lower() in ("off", "0", "skip"):
        print("perf gate: skipped (REPRO_PERF_GATE=off)")
        return 0

    try:
        with open(args.current, encoding="utf-8") as fh:
            current = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"perf gate: cannot load inputs: {exc}", file=sys.stderr)
        return 2

    baseline = None
    baseline_name = os.path.basename(args.baseline)
    if args.db:
        baseline = _store_baseline(args.db, current.get("suite"), args.db_commit)
        if baseline is None:
            print(
                f"perf gate: store {args.db} has no "
                f"{current.get('suite')!r} bench recording; falling back to "
                f"{baseline_name}"
            )
        else:
            baseline_name = (
                f"store {os.path.basename(args.db)} "
                f"(commit {baseline.get('commit') or '?'}, "
                f"recorded {baseline.get('timestamp') or '?'})"
            )
    if baseline is None:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"perf gate: cannot load inputs: {exc}", file=sys.stderr)
            return 2
        baseline_name = f"committed JSON {os.path.basename(args.baseline)}"

    # Name the source on *every* path -- pass or fail, store or fallback --
    # so a CI log always shows which numbers the run was gated against.
    print(f"perf gate: baseline source: {baseline_name}")

    if baseline.get("suite") != current.get("suite"):
        print(
            f"perf gate: suite mismatch (baseline {baseline.get('suite')!r} "
            f"vs current {current.get('suite')!r}); compare like with like",
            file=sys.stderr,
        )
        return 2

    base_cells = _cells(baseline)
    cur_cells = _cells(current)
    pinned = {
        k: c
        for k, c in base_cells.items()
        if c.get("status") == "ok" and c.get("compile_time_s") is not None
    }
    if not pinned:
        print("perf gate: baseline pins no ok cells", file=sys.stderr)
        return 2

    offenders = []
    checked = 0
    for key, base in sorted(pinned.items()):
        cur = cur_cells.get(key)
        if cur is None:
            offenders.append((key, "pinned cell missing from current run", None))
            continue
        if cur.get("status") != "ok":
            offenders.append(
                (key, f"pinned cell now status={cur.get('status')!r}", None)
            )
            continue
        checked += 1
        base_s = float(base["compile_time_s"])
        cur_s = float(cur["compile_time_s"])
        budget = args.factor * base_s + args.slack_s
        if cur_s > budget:
            offenders.append(
                (
                    key,
                    f"{cur_s:.3f}s vs baseline {base_s:.3f}s "
                    f"({cur_s / base_s if base_s else float('inf'):.2f}x, "
                    f"budget {budget:.3f}s)",
                    cur_s / base_s if base_s else None,
                )
            )

    if offenders:
        print(
            f"perf gate: FAIL — {len(offenders)} of {len(pinned)} pinned cells "
            f"regressed beyond {args.factor}x (+{args.slack_s}s slack) "
            f"of {baseline_name}:",
            file=sys.stderr,
        )
        for key, why, _ratio in offenders:
            print(f"  - {_fmt(key)}: {why}", file=sys.stderr)
        if str(current.get("suite", "")).startswith("serve"):
            refresh = (
                "python scripts/serve_bench.py --smoke "
                "--out BENCH_baseline_serve_smoke.json"
            )
        else:
            refresh = (
                "REPRO_SABRE_KERNEL=python python scripts/bench.py "
                "--smoke --out BENCH_baseline_smoke.json"
            )
        print(
            "perf gate: if this is an intentional trade-off, refresh the "
            f"baseline: {refresh}",
            file=sys.stderr,
        )
        return 1

    print(
        f"perf gate: ok — {checked} pinned cells within {args.factor}x "
        f"(+{args.slack_s}s slack) of {baseline_name}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
