#!/usr/bin/env python
"""Serve-layer traffic generator -> ``BENCH_serve.json``.

Drives a ``repro.serve`` instance with two canonical load shapes and
records the latency/throughput numbers EXPERIMENTS.md quotes:

* **closed-loop** -- N concurrent clients, each firing its next request the
  moment the previous one returns; measures the service's sustainable
  throughput (compiles/sec) and per-request latency under full pipelines;
* **open-loop**   -- requests arrive on a fixed schedule regardless of
  completion (the "users do not wait for each other" model); measures
  latency under a target arrival rate, including queueing delay.

Requests cycle a small seed set, so a fixed fraction of the traffic repeats
and exercises the LRU/store cache path; the reported ``cache_hit_rate``
comes from the responses' ``cache`` field, cross-checked against the
server's ``/v1/stats`` counters.

By default the script boots its own ``python -m repro.serve`` subprocess
(prewarmed, ephemeral port) and tears it down afterwards; ``--url`` targets
an already-running server instead.

Usage::

    python scripts/serve_bench.py [--smoke] [--url URL] [--workers N]
                                  [--out BENCH_serve.json] [--store DB]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import re
import signal
import statistics
import subprocess
import sys
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.serve import ServeClient, ServeError  # noqa: E402


def _git(*args: str) -> str:
    try:
        out = subprocess.run(
            ["git", *args], cwd=REPO_ROOT, capture_output=True, text=True, timeout=30
        )
        return out.stdout.strip() if out.returncode == 0 else ""
    except (OSError, subprocess.SubprocessError):
        return ""


def _percentile(samples, q: float) -> float:
    """Nearest-rank percentile; robust for the small N of --smoke runs."""

    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


class _ServerProcess:
    """Own the benchmarked server's lifecycle when no --url was given."""

    def __init__(self, workers: int, prewarm: str) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve",
                "--port", "0",
                "--workers", str(workers),
                "--prewarm", prewarm,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        line = self.proc.stdout.readline()
        match = re.search(r"listening on (http://[\d.]+:\d+)", line)
        if not match:
            self.proc.kill()
            raise RuntimeError(f"server failed to start: {line!r}")
        self.url = match.group(1)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                self.proc.kill()


def _request_kwargs(index: int, unique_seeds: int) -> dict:
    """The i-th request of a run; seeds cycle so repeats hit the cache."""

    return {
        "workload": "qft",
        "architecture": "grid",
        "size": 4,
        "approach": "sabre",
        "seed": index % unique_seeds,
    }


def _fire(client: ServeClient, index: int, unique_seeds: int, sink: list, lock):
    t0 = time.perf_counter()
    try:
        resp = client.compile(**_request_kwargs(index, unique_seeds))
        wall = time.perf_counter() - t0
        with lock:
            sink.append((wall, resp.cache, resp.status, None))
    except ServeError as exc:
        wall = time.perf_counter() - t0
        with lock:
            sink.append((wall, None, "error", type(exc).__name__))


def run_closed_loop(url: str, requests: int, concurrency: int, unique_seeds: int):
    """N clients, each back-to-back: sustainable-throughput shape."""

    sink, lock = [], threading.Lock()
    counter = iter(range(requests))
    counter_lock = threading.Lock()

    def worker(worker_idx: int) -> None:
        client = ServeClient(
            url, name=f"closed-{worker_idx}", retry_overload=True
        )
        while True:
            with counter_lock:
                index = next(counter, None)
            if index is None:
                return
            _fire(client, index, unique_seeds, sink, lock)

    t0 = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(concurrency)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return _summarize("closed", sink, time.perf_counter() - t0,
                      concurrency=concurrency)


def run_open_loop(url: str, requests: int, rate_rps: float, unique_seeds: int):
    """Fixed arrival schedule: latency-under-load shape (includes queueing)."""

    sink, lock = [], threading.Lock()
    client = ServeClient(url, name="open", retry_overload=True)
    threads = []
    interval = 1.0 / rate_rps
    t0 = time.perf_counter()
    for index in range(requests):
        target = t0 + index * interval
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        t = threading.Thread(
            target=_fire, args=(client, index, unique_seeds, sink, lock)
        )
        t.start()
        threads.append(t)
    for t in threads:
        t.join()
    return _summarize("open", sink, time.perf_counter() - t0, rate_rps=rate_rps)


def _summarize(mode: str, sink: list, wall_s: float, **shape) -> dict:
    walls = [w for w, _, _, _ in sink]
    hits = sum(1 for _, cache, _, _ in sink if cache)
    errors = sum(1 for _, _, _, err in sink if err)
    ok = sum(1 for _, _, status, _ in sink if status == "ok")
    return {
        "mode": mode,
        **shape,
        "requests": len(sink),
        "ok": ok,
        "errors": errors,
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(len(sink) / wall_s, 2) if wall_s else None,
        "p50_ms": round(_percentile(walls, 0.50) * 1e3, 1) if walls else None,
        "p99_ms": round(_percentile(walls, 0.99) * 1e3, 1) if walls else None,
        "mean_ms": round(statistics.fmean(walls) * 1e3, 1) if walls else None,
        "cache_hit_rate": round(hits / len(sink), 3) if sink else None,
    }


def _gate_cells(shapes: list) -> list:
    """The load shapes as perf-gate-pinnable bench cells.

    One cell per shape, keyed like ``scripts/bench.py`` cells so
    ``perf_gate.py`` and the store's ``bench_cells`` table need no special
    casing: ``kind`` carries the load shape, ``compile_time_s`` is the
    shape's p50 request latency (p99 is a single sample at smoke sizes and
    would flap the gate).
    """

    cells = []
    for shape in shapes:
        cells.append(
            {
                "workload": "qft",
                "approach": "sabre",
                "kind": f"serve-{shape['mode']}",
                "size": 4,
                "qubits": 16,
                "status": "ok" if not shape["errors"] else "error",
                "compile_time_s": (
                    None if shape["p50_ms"] is None else shape["p50_ms"] / 1e3
                ),
                "p99_s": (
                    None if shape["p99_ms"] is None else shape["p99_ms"] / 1e3
                ),
                "throughput_rps": shape["throughput_rps"],
            }
        )
    return cells


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="target an already-running server")
    parser.add_argument("--workers", type=int, default=2,
                        help="workers for the auto-started server")
    parser.add_argument("--prewarm", default="grid:4",
                        help="KIND:SIZE the auto-started server prewarms")
    parser.add_argument("--requests", type=int, default=64,
                        help="requests per load shape")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="closed-loop client count")
    parser.add_argument("--rate", type=float, default=20.0,
                        help="open-loop arrival rate (req/s)")
    parser.add_argument("--unique-seeds", type=int, default=8,
                        help="distinct request identities; the rest repeat "
                        "and exercise the cache path")
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-scale subset for CI")
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT, "BENCH_serve.json"),
                        help="output JSON path")
    parser.add_argument("--label", default=None,
                        help="free-form label stored in the output")
    parser.add_argument("--store", default=None, metavar="DB",
                        help="additionally record the payload as bench "
                        "history in a SQLite experiment store")
    args = parser.parse_args(argv)

    if args.smoke:
        args.requests = min(args.requests, 16)
        args.concurrency = min(args.concurrency, 2)
        args.rate = min(args.rate, 10.0)
        args.unique_seeds = min(args.unique_seeds, 4)

    server = None
    url = args.url
    if url is None:
        server = _ServerProcess(args.workers, args.prewarm)
        url = server.url
        print(f"benchmarking auto-started server at {url}", flush=True)

    try:
        probe = ServeClient(url)
        probe.health()  # fail fast, before any load is generated
        shapes = [
            run_closed_loop(url, args.requests, args.concurrency,
                            args.unique_seeds),
            run_open_loop(url, args.requests, args.rate, args.unique_seeds),
        ]
        server_stats = probe.stats()
    finally:
        if server is not None:
            server.stop()

    for shape in shapes:
        print(
            f"{shape['mode']:>6}-loop  {shape['requests']:4d} req  "
            f"p50 {shape['p50_ms']:7.1f}ms  p99 {shape['p99_ms']:7.1f}ms  "
            f"{shape['throughput_rps']:6.1f} req/s  "
            f"hit-rate {shape['cache_hit_rate']:.0%}  "
            f"errors {shape['errors']}",
            flush=True,
        )

    payload = {
        "suite": "serve-smoke" if args.smoke else "serve-full",
        "label": args.label,
        "commit": _git("rev-parse", "HEAD"),
        "dirty": bool(_git("status", "--porcelain")),
        "timestamp": datetime.datetime.now(  # repro-lint: ignore[determinism] -- bench provenance stamp, never identity
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "url": args.url or "auto",
        "workers": args.workers,
        "unique_seeds": args.unique_seeds,
        "shapes": shapes,
        # the same numbers in scripts/bench.py's groups/cells shape, so the
        # perf gate pins them and the store records per-cell history
        "groups": [
            {
                "name": "serve",
                "wall_s": round(sum(s["wall_s"] for s in shapes), 3),
                "cells": _gate_cells(shapes),
            }
        ],
        "server_stats": server_stats,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"-> {args.out}")
    if args.store:
        from repro.store import ExperimentStore

        with ExperimentStore(args.store) as store:
            bench_id = store.record_bench(
                payload, source=os.path.basename(args.out)
            )
        print(f"recorded as bench {bench_id} in {args.store}")

    total_errors = sum(s["errors"] for s in shapes)
    return 1 if total_errors else 0


if __name__ == "__main__":
    sys.exit(main())
