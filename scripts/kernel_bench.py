#!/usr/bin/env python
"""SABRE routing-kernel microbenchmark: µs per swap iteration, C vs Python.

Routes the paper's QFT workload on the fig19 lattice-surgery grid at
100 -> 1024 qubits with a single forward pass (``passes=1``), once per
routing engine, and reports the per-swap-iteration cost (total map
wall-clock, including op emission/replay, divided by routing iterations --
the honest end-to-end number) plus the speedup.  The iteration counts are
asserted identical across engines, so the comparison is swap-for-swap.

This is the measurement behind the EXPERIMENTS.md "Compiled routing kernel"
table; it is not part of CI (the 1024-qubit Python leg alone runs minutes).

Usage::

    python scripts/kernel_bench.py [--sizes 10 16 23 32] [--seed 0] [--out FILE.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.arch import LatticeSurgeryTopology  # noqa: E402
from repro.baselines import SabreMapper  # noqa: E402
from repro.baselines.sabre_kernel import kernel_available  # noqa: E402


def bench_size(m: int, seed: int) -> dict:
    topo = LatticeSurgeryTopology(m)
    row = {"m": m, "qubits": topo.num_qubits}
    mapped_ref = None
    for kern in ("python", "c"):
        mapper = SabreMapper(topo, seed=seed, passes=1, kernel=kern)
        t0 = time.perf_counter()
        mapped = mapper.map_qft(topo.num_qubits)
        wall = time.perf_counter() - t0
        stats = mapper.last_routing_stats
        row[kern] = {
            "wall_s": round(wall, 3),
            "iterations": stats["iterations"],
            "us_per_iter": round(1e6 * wall / max(1, stats["iterations"]), 2),
            "candidates_mean": round(stats["candidates_mean"], 1),
            "swaps": mapped.swap_count(),
            "depth": mapped.depth(),
        }
        if mapped_ref is None:
            mapped_ref = mapped
        else:
            # swap-for-swap comparability (and a free equivalence check)
            if mapped.ops != mapped_ref.ops:
                raise RuntimeError(f"kernels diverged at m={m}")
    row["speedup"] = round(row["python"]["us_per_iter"] / row["c"]["us_per_iter"], 2)
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[10, 16, 23, 32],
        help="lattice sizes m (m^2 qubits); default 100->1024 qubits",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="optional JSON output path")
    args = parser.parse_args(argv)

    if not kernel_available():
        print(
            "kernel_bench: compiled kernel not built; run "
            "`python setup.py build_ext --inplace` first",
            file=sys.stderr,
        )
        return 2

    rows = []
    print(
        f"{'qubits':>7} {'iters':>9} {'python us/it':>13} {'c us/it':>9} "
        f"{'speedup':>8} {'swaps':>9}"
    )
    for m in args.sizes:
        row = bench_size(m, args.seed)
        rows.append(row)
        print(
            f"{row['qubits']:>7} {row['python']['iterations']:>9} "
            f"{row['python']['us_per_iter']:>13.1f} "
            f"{row['c']['us_per_iter']:>9.1f} {row['speedup']:>7.1f}x "
            f"{row['python']['swaps']:>9}",
            flush=True,
        )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump({"seed": args.seed, "rows": rows}, fh, indent=1)
            fh.write("\n")
        print(f"-> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
