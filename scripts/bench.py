#!/usr/bin/env python
"""Fixed compile-time micro-suite -> ``BENCH_compile_time.json``.

Runs a *fixed* set of compilation cells (so numbers are comparable across
commits) and records per-cell wall times plus the commit hash, giving the
repo a perf trajectory:

* ``micro-qft-grid``   -- SABRE QFT on 5x5 / 7x7 / 9x9 grids, timed per cell
  (the reference cells quoted in CHANGES.md since PR 1);
* ``fig17-smoke``      -- the quick-profile Fig. 17 sweep (ours + SABRE on
  heavy-hex), timed end-to-end through the real harness (`run_cells`);
* ``fig19-smoke``      -- the quick-profile Fig. 19 sweep (ours + LNN + SABRE
  on the lattice-surgery grid, up to 1024 qubits), likewise.

``--smoke`` shrinks every group to a seconds-scale subset for CI
(``scripts/ci.sh`` runs that mode); the default ("full") suite is the one
whose before/after totals EXPERIMENTS.md records.  Each group runs through
the declarative run API (``adhoc_plan``/``execute``), and its record carries
the typed ``RunReport`` (executor name, status counts, wall-clock) next to
the per-cell timings.

Usage::

    python scripts/bench.py [--smoke] [--jobs N] [--out BENCH_compile_time.json]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.eval.experiments import QUICK  # noqa: E402
from repro.eval.parallel import CellSpec  # noqa: E402
from repro.eval.runs import adhoc_plan, execute  # noqa: E402


def _git(*args: str) -> str:
    try:
        out = subprocess.run(
            ["git", *args], cwd=REPO_ROOT, capture_output=True, text=True, timeout=30
        )
        return out.stdout.strip() if out.returncode == 0 else ""
    except (OSError, subprocess.SubprocessError):
        return ""


def _cell_record(spec: CellSpec, result) -> dict:
    return {
        "workload": spec.workload,
        "approach": result.approach,
        "kind": spec.kind,
        "size": spec.size,
        "qubits": result.num_qubits,
        "status": result.status,
        "compile_time_s": result.compile_time_s,
        "depth": result.depth,
        "swaps": result.swap_count,
        # Which routing engine computed the cell (SABRE cells record
        # "c"/"python"; other approaches None).  Engines are bit-identical,
        # so this annotates the perf trajectory without forking identities.
        "kernel": (result.extra or {}).get("kernel"),
    }


def _suite(smoke: bool) -> list:
    """(group name, spec list) pairs; fixed per mode so runs are comparable."""

    prof = QUICK
    micro_grids = (5, 7) if smoke else (5, 7, 9)
    micro = [CellSpec.make("sabre", "grid", m) for m in micro_grids]

    fig17_groups = (2, 4, 6, 8) if smoke else prof.fig17_groups
    fig17 = []
    for groups in fig17_groups:
        fig17.append(CellSpec.make("ours", "heavyhex", groups))
        fig17.append(
            CellSpec.make(
                "sabre", "heavyhex", groups, max_qubits=prof.sabre_max_qubits
            )
        )

    fig19_m = (10, 12) if smoke else prof.fig19_m
    fig19 = []
    for m in fig19_m:
        fig19.append(CellSpec.make("ours", "lattice", m))
        fig19.append(CellSpec.make("lnn", "lattice", m))
        fig19.append(
            CellSpec.make("sabre", "lattice", m, max_qubits=prof.sabre_max_qubits)
        )

    # New-workload cells (registry-driven): fixed sizes in both modes so the
    # numbers stay comparable across commits.
    workloads = [
        CellSpec.make("sabre", "grid", 5, workload="qaoa"),
        CellSpec.make("sabre", "grid", 5, workload="random"),
        CellSpec.make("greedy", "grid", 5, workload="qaoa"),
    ]

    return [
        ("micro-qft-grid", micro),
        ("fig17-smoke", fig17),
        ("fig19-smoke", fig19),
        ("workloads-smoke", workloads),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="seconds-scale subset for CI"
    )
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "BENCH_compile_time.json"),
        help="output JSON path",
    )
    parser.add_argument(
        "--label", default=None, help="free-form label stored in the output"
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DB",
        help="additionally record the payload as bench history in a SQLite "
        "experiment store (queryable via 'python -m repro.store history DB'; "
        "the perf gate reads its baseline from there with --db)",
    )
    args = parser.parse_args(argv)

    groups = []
    suite_start = time.perf_counter()
    for name, specs in _suite(args.smoke):
        # Each group runs as one plan through the run API, so the output
        # records the typed RunReport (executor name, status counts, wall)
        # alongside the per-cell timings the perf trajectory is built on.
        report = execute(adhoc_plan(name, specs), jobs=args.jobs)
        cells = [_cell_record(s, r) for s, r in zip(specs, report.results)]
        groups.append(
            {
                "name": name,
                "wall_s": round(report.wall_s, 3),
                "executor": report.executor,
                "report": report.to_dict(include_results=False),
                "cells": cells,
            }
        )
        print(
            f"{name:16s} {report.wall_s:8.2f}s  ({len(specs)} cells, "
            f"{report.executor})",
            flush=True,
        )
    total = time.perf_counter() - suite_start

    payload = {
        "suite": "smoke" if args.smoke else "full",
        "label": args.label,
        "commit": _git("rev-parse", "HEAD"),
        "dirty": bool(_git("status", "--porcelain")),
        "timestamp": datetime.datetime.now(  # repro-lint: ignore[determinism] -- bench provenance stamp, never identity
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "jobs": args.jobs,
        "total_wall_s": round(total, 3),
        "groups": groups,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"total {total:.2f}s -> {args.out}")
    if args.store:
        from repro.store import ExperimentStore

        with ExperimentStore(args.store) as store:
            bench_id = store.record_bench(
                payload, source=os.path.basename(args.out)
            )
        print(f"recorded as bench {bench_id} in {args.store}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
