#!/usr/bin/env bash
# CI entry point: run exactly what the tier-1 gate runs, from the repo root,
# plus a quick end-to-end eval smoke test.
#
# Running from the repo root is the point -- the seed repo only passed when
# pytest was invoked from inside tests/, and that class of collection bug
# (conftest shadowing, missing pytest config) must fail CI loudly.

set -euo pipefail
cd "$(dirname "$0")/.."

# ---------------------------------------------------------------------------
# Static invariants first: repro.lint checks determinism, cache-key purity,
# registry hygiene and error discipline over the whole tree.  This is the
# cheapest gate (a couple of seconds, no builds), so it runs before anything
# else -- and `--lint-only` lets the dedicated CI lint job stop here.
# ---------------------------------------------------------------------------
# Inside GitHub Actions, findings render as workflow annotations so they
# land on the diff; locally they stay plain file:line:checker:message.
lint_format="text"
if [ -n "${GITHUB_ACTIONS:-}" ]; then
    lint_format="github"
fi
echo "=== repro.lint: static invariant checks (all eight checkers) ==="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.lint --target src \
    --baseline LINT_BASELINE.txt --format "$lint_format"
echo "=== repro.lint: scripts/ + tests/ (determinism, error-discipline, deprecated-api) ==="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.lint --target tools \
    --format "$lint_format"
echo "=== repro.lint: examples/ + benchmarks/ (deprecated-api) ==="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.lint --target examples \
    --format "$lint_format"
echo "lint ok"
if [ "${1:-}" = "--lint-only" ]; then
    echo "ci.sh: lint-only run complete"
    exit 0
fi

# ---------------------------------------------------------------------------
# `--analyze-only`: static analysis of the C routing kernel, warnings as
# errors.  repro.lint cannot see into _sabre_kernel.c; this leg runs next to
# the ASAN job so memory bugs are caught both statically and dynamically.
# Prefers cppcheck, then clang --analyze, then gcc -fanalyzer -- CI installs
# cppcheck, the fallback keeps the leg meaningful on bare toolchains.
# Suppressions live in scripts/analyze_suppressions.txt (cppcheck syntax;
# `gcc-disable:` lines turn into -Wno-analyzer-* flags for the fallback).
# ---------------------------------------------------------------------------
if [ "${1:-}" = "--analyze-only" ]; then
    kernel_c="src/repro/baselines/_sabre_kernel.c"
    py_inc=$(python -c "import sysconfig; print(sysconfig.get_paths()['include'])")
    suppressions="scripts/analyze_suppressions.txt"
    if command -v cppcheck >/dev/null 2>&1; then
        echo "=== analyze: cppcheck (warnings as errors) ==="
        cppcheck --std=c99 --enable=warning,portability,performance \
            --error-exitcode=1 --inline-suppr \
            --suppressions-list="$suppressions" \
            -I"$py_inc" "$kernel_c"
    elif command -v clang >/dev/null 2>&1; then
        echo "=== analyze: clang --analyze (warnings as errors) ==="
        clang --analyze --analyzer-output text -Xclang -analyzer-werror \
            -Wall -Wextra -Werror -I"$py_inc" "$kernel_c"
    else
        echo "=== analyze: gcc -fanalyzer (warnings as errors) ==="
        gcc_flags=()
        while IFS= read -r line; do
            case "$line" in
                gcc-disable:*) gcc_flags+=("-Wno-analyzer-${line#gcc-disable:}") ;;
            esac
        done < "$suppressions"
        gcc -fanalyzer -Wall -Wextra -Werror -O1 "${gcc_flags[@]}" \
            -I"$py_inc" -c "$kernel_c" -o /dev/null
    fi
    echo "ci.sh: analyze-only run complete"
    exit 0
fi

# ---------------------------------------------------------------------------
# `--asan-only`: build the C kernel with ASAN+UBSAN (-Werror) and run the
# kernel equivalence suite under the sanitizers, then stop.  Python tooling
# cannot see into _sabre_kernel.c; this leg makes refcount/OOB/overflow bugs
# there abort loudly instead of corrupting "bit-identical" results.
#   - LD_PRELOAD: the ASAN runtime must be loaded before python itself,
#     because the interpreter binary is not instrumented.
#   - detect_leaks=0: CPython intentionally leaks at exit; leak reports
#     would drown real findings.
#   - halt_on_error / -fno-sanitize-recover=all (set by setup.py): any hit
#     is fatal, so the job fails instead of printing-and-passing.
# ---------------------------------------------------------------------------
if [ "${1:-}" = "--asan-only" ]; then
    echo "=== asan: rebuild kernel with -fsanitize=address,undefined -Werror ==="
    rm -f src/repro/baselines/_sabre_kernel*.so
    REPRO_KERNEL_SANITIZE=1 REPRO_REQUIRE_KERNEL=1 \
        python setup.py build_ext --inplace > /dev/null
    asan_rt=$(gcc -print-file-name=libasan.so)
    echo "=== asan: kernel equivalence suite under ASAN+UBSAN ==="
    LD_PRELOAD="$asan_rt" \
        ASAN_OPTIONS=detect_leaks=0:halt_on_error=1 \
        UBSAN_OPTIONS=print_stacktrace=1 \
        REPRO_SABRE_KERNEL=c \
        PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m pytest tests/test_sabre_kernel.py -q
    # Leave no sanitized extension behind: it cannot be imported without
    # the preloaded runtime and would poison a later plain run.
    rm -f src/repro/baselines/_sabre_kernel*.so
    echo "ci.sh: asan-only run complete"
    exit 0
fi

# ---------------------------------------------------------------------------
# Chaos smoke: the fault-tolerance contract, exercised for real.  A serial
# reference run journals fig27; then a dispatcher run computes the same plan
# with injected faults -- worker w0 SIGKILLed mid-run, worker w1's
# heartbeats frozen while it stalls past its lease -- and the two journals
# must agree cell for cell on every pinned metric.  The report must also
# show the dispatcher actually reassigned leases: a chaos spec that fires
# nothing would "pass" vacuously.
# ---------------------------------------------------------------------------
chaos_smoke() {
    echo "=== chaos smoke: dispatcher (kill + frozen heartbeat) vs serial ==="
    local chaos_dir
    chaos_dir=$(mktemp -d)
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.eval -e fig27 \
        --executor shard-coordinator --journal "$chaos_dir/serial" | tail -2
    local chaos_out
    chaos_out=$(REPRO_CHAOS="kill-worker@worker=w0,cell=1;freeze-heartbeat@worker=w1,cell=2;stall@worker=w1,cell=2,s=1.2" \
        PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.eval -e fig27 \
        --executor dispatch --jobs 2 --lease-s 0.4 --heartbeat-s 0.1 \
        --journal "$chaos_dir/chaos")
    echo "$chaos_out" | tail -2
    echo "$chaos_out" | grep -Eq "reassigned=[1-9]" || {
        echo "ci.sh: FAIL — chaos run never reassigned a lease (faults did not fire?)" >&2
        exit 1
    }
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python - "$chaos_dir" <<'PY'
import json, sys
from pathlib import Path

def cells(path):
    out = {}
    for line in Path(path, "journal.jsonl").read_text().splitlines():
        rec = json.loads(line)
        if rec.get("type") != "cell":
            continue
        r = rec["result"]
        out[rec["key"]] = (r["approach"], r["status"], r["depth"], r["swap_count"])
    return out

base = sys.argv[1]
serial, chaotic = cells(f"{base}/serial"), cells(f"{base}/chaos")
assert chaotic == serial, f"chaos run != serial run: {chaotic} vs {serial}"
print(f"chaos smoke ok: {len(serial)} cells bit-equal under worker kill + heartbeat freeze")
PY
    rm -rf "$chaos_dir"
}

if [ "${1:-}" = "--chaos-only" ]; then
    chaos_smoke
    echo "ci.sh: chaos-only run complete"
    exit 0
fi

# ---------------------------------------------------------------------------
# Store smoke: the SQLite experiment store end to end.  Two shards journal
# fig27 to JSONL while recording runs + caching cells into one shared .db;
# the store's run records must be bit-equal to the journals, the shared
# store-backed cache must serve the full sweep warm, a seeded divergent
# merge must be refused by the UNIQUE constraint, and the perf gate must
# read its baseline from imported legacy bench history (--db).
# ---------------------------------------------------------------------------
store_smoke() {
    echo "=== store smoke: sharded fig27 through the SQLite experiment store ==="
    local store_dir
    store_dir=$(mktemp -d)
    local db="$store_dir/results.db"
    # Two "machines" run complementary slices: JSONL journals stay the
    # resume source of truth, the store records the same appends, and both
    # shards cache into the same store-backed cache.
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.eval -e fig27 \
        --shard 0/2 --journal "$store_dir/j0" --store "$db" --cache "$db" | tail -2
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.eval -e fig27 \
        --shard 1/2 --journal "$store_dir/j1" --store "$db" --cache "$db" | tail -2
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python - "$store_dir" <<'PY'
import json, sys
from pathlib import Path
from repro.store import ExperimentStore

base = Path(sys.argv[1])

def cells(path):
    out = {}
    for line in (path / "journal.jsonl").read_text().splitlines():
        rec = json.loads(line)
        if rec.get("type") == "cell":
            out[rec["key"]] = rec["result"]
    return out

jsonl = {}
for shard in ("j0", "j1"):
    jsonl.update(cells(base / shard))
with ExperimentStore(base / "results.db") as store:
    runs = store.list_runs()
    assert len(runs) == 2, f"expected 2 recorded runs, got {len(runs)}"
    recorded = {}
    for run in runs:
        recorded.update(store.run_results(run["id"]))
assert recorded == jsonl, "store run records != JSONL journals"
print(f"store smoke ok: {len(jsonl)} journaled cells bit-equal in the store")
PY
    # The shared store-backed cache serves the whole sweep warm.
    local warm_out
    warm_out=$(PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
        python -m repro.eval -e fig27 --cache "$db")
    echo "$warm_out" | tail -2
    echo "$warm_out" | grep -Eq "cache: [0-9]+ hits, 0 misses" || {
        echo "ci.sh: FAIL — store-backed cache did not serve the sweep warm" >&2
        exit 1
    }
    # Merge discipline: a seeded divergent cell is refused by the UNIQUE
    # constraint (CacheMergeConflict), never silently overwritten.
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python - "$db" "$store_dir" <<'PY'
import json, sys
from pathlib import Path
from repro.eval import CacheMergeConflict, ResultCache
from repro.store import ExperimentStore

db, base = sys.argv[1], Path(sys.argv[2])
with ExperimentStore(db) as store:
    key = store.query_cells(status="ok", limit=1)[0]["cell_key"]
    result = store.get_cell(key)
result["depth"] = (result.get("depth") or 0) + 1  # divergent metric
divergent = base / "divergent"
divergent.mkdir()
(divergent / f"{key}.json").write_text(json.dumps(result), encoding="utf-8")
cache = ResultCache(db)
try:
    cache.merge(divergent)
except CacheMergeConflict as exc:
    print(f"store smoke ok: divergent merge refused ({str(exc).split(';')[0]})")
else:
    raise SystemExit("ci.sh: FAIL — divergent merge was silently accepted")
finally:
    cache.close()
PY
    # Legacy bench history in, then the perf gate reads its baseline from
    # the store (--db) instead of the committed JSON.
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.store \
        import-legacy "$db" --bench BENCH_*.json
    local bench_json="$store_dir/bench.json"
    python scripts/bench.py --smoke --out "$bench_json"
    local gate_out
    gate_out=$(python scripts/perf_gate.py "$bench_json" --db "$db")
    echo "$gate_out"
    echo "$gate_out" | grep -q "of store results.db" || {
        echo "ci.sh: FAIL — perf gate did not use the store baseline" >&2
        exit 1
    }
    # Record this run as history too, then the query/history CLI smoke.
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.store \
        import-legacy "$db" --bench "$bench_json"
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.store \
        query "$db" --approach sabre --status ok --limit 3
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.store \
        history "$db" --suite smoke --approach sabre --kind grid --limit 5
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.store info "$db"
    rm -rf "$store_dir"
}

if [ "${1:-}" = "--store-only" ]; then
    store_smoke
    echo "ci.sh: store-only run complete"
    exit 0
fi

# ---------------------------------------------------------------------------
# Serve smoke: the compilation service under real traffic.  serve_bench.py
# boots `python -m repro.serve` (warm pool, ephemeral port), drives the
# closed- and open-loop load shapes against it, and SIGTERMs it afterwards
# (a hung drain fails the script).  The leg asserts zero request errors and
# a hard p99 ceiling, then runs the perf gate against the committed serve
# baseline -- the serve cells are pinned exactly like the compile cells.
# ---------------------------------------------------------------------------
serve_smoke() {
    echo "=== serve smoke: traffic generator vs python -m repro.serve ==="
    local serve_json
    serve_json=$(mktemp --suffix=.json)
    python scripts/serve_bench.py --smoke --out "$serve_json"
    python - "$serve_json" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
for shape in data["shapes"]:
    assert shape["errors"] == 0, f"{shape['mode']}-loop had errors: {shape}"
    # Hard ceiling, not a regression gate: a served compile of a prewarmed
    # 4x4 grid must never take seconds (perf_gate handles the 1.5x drift).
    assert shape["p99_ms"] < 2000, f"{shape['mode']}-loop p99 {shape['p99_ms']}ms"
print("serve smoke ok: " + ", ".join(
    f"{s['mode']} p50 {s['p50_ms']}ms p99 {s['p99_ms']}ms "
    f"{s['throughput_rps']} req/s" for s in data["shapes"]))
PY
    python scripts/perf_gate.py "$serve_json" \
        --baseline BENCH_baseline_serve_smoke.json
    rm -f "$serve_json"
}

if [ "${1:-}" = "--serve-only" ]; then
    echo "=== serve tests: tests/test_serve/ + public-surface contract ==="
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest \
        tests/test_serve tests/test_public_api.py -q
    serve_smoke
    echo "ci.sh: serve-only run complete"
    exit 0
fi

# ---------------------------------------------------------------------------
# SABRE kernel leg.  CI runs this script twice per Python version:
#   - compiled leg:  REPRO_SABRE_KERNEL=c      (extension built, required)
#   - fallback leg:  REPRO_SABRE_KERNEL=python (extension never consulted)
# Unset, it builds best-effort and lets kernel="auto" pick (local dev runs).
# ---------------------------------------------------------------------------
leg="${REPRO_SABRE_KERNEL:-auto}"
echo "=== SABRE kernel leg: $leg ==="
if [ "$leg" != "python" ]; then
    if [ "$leg" = "c" ]; then
        # The compiled leg must fail loudly if the toolchain regresses --
        # otherwise it would silently test the fallback twice.
        REPRO_REQUIRE_KERNEL=1 python setup.py build_ext --inplace > /dev/null
    else
        python setup.py build_ext --inplace > /dev/null || true
    fi
fi
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python - <<'PY'
import os
from repro.baselines.sabre_kernel import kernel_available
leg = os.environ.get("REPRO_SABRE_KERNEL", "auto")
print(f"compiled kernel available: {kernel_available()} (leg: {leg})")
if leg == "c" and not kernel_available():
    raise SystemExit("ci.sh: FAIL — compiled leg requested but extension missing")
PY

echo
echo "=== tier-1: pytest from the repo root ==="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q

echo
echo "=== examples smoke: the new repro.compile() API end to end ==="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python examples/quickstart.py > /dev/null
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python examples/compare_backends.py > /dev/null
echo "examples ok"

echo
echo "=== workload smoke: --workload qaoa registry cross-product sweep ==="
# Short SATMAP budget: its cells time out (typed) instead of eating 20s each.
sweep_out=$(REPRO_SATMAP_TIMEOUT_S=2 \
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.eval --workload qaoa)
echo "$sweep_out" | tail -3
# Every cell must come back typed: ok / unsupported / timeout -- no crashes,
# and at least one approach must actually compile QAOA per architecture.
echo "$sweep_out" | grep -Eq "qaoa .* sabre .* ok " || {
    echo "ci.sh: FAIL — no ok sabre qaoa cell in the sweep" >&2
    exit 1
}

echo
echo "=== eval smoke: fig27 split across two shards, journaled, then merged ==="
cache_dir=$(mktemp -d)
trap 'rm -rf "$cache_dir"' EXIT
# Two "machines" run complementary slices of the same plan, each journaling
# to its own run journal and caching to its own directory...
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.eval -e fig27 \
    --shard 0/2 --journal "$cache_dir/j0" --cache "$cache_dir/c0" | tail -2
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.eval -e fig27 \
    --shard 1/2 --journal "$cache_dir/j1" --cache "$cache_dir/c1" | tail -2
# ...while a single unsharded run (through the pool executor) journals the
# reference; the union of the shard journals must equal it cell for cell.
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.eval -e fig27 \
    --jobs 2 --executor shard-coordinator --journal "$cache_dir/jfull" | tail -2
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python - "$cache_dir" <<'PY'
import json, sys
from pathlib import Path

def cells(path):
    out = {}
    for line in Path(path, "journal.jsonl").read_text().splitlines():
        rec = json.loads(line)
        if rec.get("type") != "cell":
            continue
        r = rec["result"]
        out[rec["key"]] = (r["approach"], r["status"], r["depth"], r["swap_count"])
    return out

base = sys.argv[1]
sharded = {**cells(f"{base}/j0"), **cells(f"{base}/j1")}
full = cells(f"{base}/jfull")
assert set(cells(f"{base}/j0")) .isdisjoint(cells(f"{base}/j1")), "shards overlap"
assert sharded == full, f"merged shard journals != single run: {sharded} vs {full}"
print(f"shard smoke ok: {len(full)} cells, 2-shard union == unsharded run")
PY
# Conflict-checked cache merge unions the shard caches; the merged cache must
# then serve the whole sweep warm (0 misses).
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.eval \
    --cache "$cache_dir/merged" --cache-merge "$cache_dir/c0" "$cache_dir/c1"
warm_out=$(PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python -m repro.eval -e fig27 --jobs 2 --cache "$cache_dir/merged")
echo "$warm_out" | tail -2
echo "$warm_out" | grep -Eq "cache: [0-9]+ hits, 0 misses" || {
    echo "ci.sh: FAIL — merged shard caches did not serve the full sweep warm" >&2
    exit 1
}

echo
chaos_smoke

echo
store_smoke

echo
serve_smoke

echo
echo "=== perf smoke: fixed compile-time micro-suite ==="
bench_out=$(mktemp --suffix=.json)
trap 'rm -rf "$cache_dir" "$bench_out"' EXIT
python scripts/bench.py --smoke --out "$bench_out"
python - "$bench_out" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
bad = [c for g in data["groups"] for c in g["cells"] if c["status"] == "error"]
assert not bad, f"bench cells errored: {bad}"
print(f"bench smoke ok: {data['total_wall_s']}s over {sum(len(g['cells']) for g in data['groups'])} cells")
PY

echo
echo "=== perf gate: smoke bench vs committed baseline ==="
# Fails (listing the offending cells) when any pinned cell's wall-clock
# regressed beyond 1.5x the committed BENCH_baseline_smoke.json -- the
# baseline is recorded with the *python* kernel, so both legs run against
# the same budget.  Slow shared runners can widen it via
# REPRO_PERF_GATE_FACTOR, or skip with REPRO_PERF_GATE=off.
python scripts/perf_gate.py "$bench_out"

echo
echo "ci.sh: all green"
