#!/usr/bin/env bash
# CI entry point: run exactly what the tier-1 gate runs, from the repo root,
# plus a quick end-to-end eval smoke test.
#
# Running from the repo root is the point -- the seed repo only passed when
# pytest was invoked from inside tests/, and that class of collection bug
# (conftest shadowing, missing pytest config) must fail CI loudly.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== tier-1: pytest from the repo root ==="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q

echo
echo "=== examples smoke: the new repro.compile() API end to end ==="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python examples/quickstart.py > /dev/null
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python examples/compare_backends.py > /dev/null
echo "examples ok"

echo
echo "=== workload smoke: --workload qaoa registry cross-product sweep ==="
# Short SATMAP budget: its cells time out (typed) instead of eating 20s each.
sweep_out=$(REPRO_SATMAP_TIMEOUT_S=2 \
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m repro.eval --workload qaoa)
echo "$sweep_out" | tail -3
# Every cell must come back typed: ok / unsupported / timeout -- no crashes,
# and at least one approach must actually compile QAOA per architecture.
echo "$sweep_out" | grep -Eq "qaoa .* sabre .* ok " || {
    echo "ci.sh: FAIL — no ok sabre qaoa cell in the sweep" >&2
    exit 1
}

echo
echo "=== eval smoke: fig27 seed sweep through the parallel harness ==="
cache_dir=$(mktemp -d)
trap 'rm -rf "$cache_dir"' EXIT
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python -m repro.eval -e fig27 --jobs 2 --cache "$cache_dir"
# warm re-run must be served entirely from the cache (any hit count, 0 misses)
warm_out=$(PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} \
    python -m repro.eval -e fig27 --jobs 2 --cache "$cache_dir")
echo "$warm_out" | tail -2
echo "$warm_out" | grep -Eq "cache: [0-9]+ hits, 0 misses" || {
    echo "ci.sh: FAIL — warm re-run was not fully served from the cache" >&2
    exit 1
}

echo
echo "=== perf smoke: fixed compile-time micro-suite ==="
bench_out=$(mktemp --suffix=.json)
trap 'rm -rf "$cache_dir" "$bench_out"' EXIT
python scripts/bench.py --smoke --out "$bench_out"
python - "$bench_out" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
bad = [c for g in data["groups"] for c in g["cells"] if c["status"] == "error"]
assert not bad, f"bench cells errored: {bad}"
print(f"bench smoke ok: {data['total_wall_s']}s over {sum(len(g['cells']) for g in data['groups'])} cells")
PY

echo
echo "ci.sh: all green"
