#!/usr/bin/env python
"""Re-discover the paper's inter-unit travel schedules with program synthesis.

The paper (Appendix 5 and 7) uses SKETCH to solve for the loop offsets/bounds
of the inter-unit interaction patterns.  This example runs the bundled
miniature synthesiser on the same two sketches and prints what it finds:

* Sycamore (diagonal links): the two unit lines must move **in sync**,
* regular grid / lattice surgery (vertical links): the second line must start
  **one step late** -- and the synced variant is provably unsatisfiable.

Run with:  python examples/synthesis_demo.py
"""

from repro.synthesis import (
    grid_ie_sketch,
    synthesize_grid_ie,
    synthesize_sycamore_ie,
)


def main() -> None:
    print("Sycamore inter-unit sketch (links between columns differing by 1):")
    result = synthesize_sycamore_ie(lengths=(4, 6, 8))
    sol = result.first
    print(f"  explored {result.explored} candidates in {result.elapsed_s * 1e3:.1f} ms")
    print(f"  solution: {sol}")
    print(f"  -> offsets are equal: the travel paths are synchronised (Fig. 13)\n")

    print("Regular-grid inter-unit sketch (same-column vertical links):")
    result = synthesize_grid_ie(lengths=(4, 5, 6, 8))
    sol = result.first
    print(f"  explored {result.explored} candidates in {result.elapsed_s * 1e3:.1f} ms")
    print(f"  solution: {sol}")
    print("  -> the second row starts one step late (Fig. 16 / Appendix 7)\n")

    print("Counterfactual: force both rows to the same offset on the grid:")
    sketch = grid_ie_sketch()
    forced = [
        a
        for a in (
            {"offset_a": 0, "offset_b": 0, "rounds_coeff": c, "rounds_const": k}
            for c in (1, 2)
            for k in (0, 1, 2)
        )
        if sketch.check(a, [{"L": 4}, {"L": 6}])
    ]
    print(f"  satisfying assignments with equal offsets: {len(forced)} (expected 0)")


if __name__ == "__main__":
    main()
