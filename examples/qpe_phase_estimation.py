#!/usr/bin/env python
"""Quantum phase estimation (QPE) built on the hardware-mapped QFT kernel.

QPE is one of the applications the paper's introduction motivates: it applies
controlled powers of a unitary to a counting register and then runs an
*inverse* QFT on that register to read the phase out.  This example

1. compiles the QFT kernel for a small heavy-hex (caterpillar) device with the
   paper's mapper,
2. turns the mapped kernel into the inverse QFT by reversing its logical gate
   stream and negating the rotation angles,
3. simulates the full QPE circuit with the library's statevector simulator and
   checks that the most likely outcome is the binary expansion of the phase.

Because the mapped kernel (like the textbook circuit without its final SWAP
network) produces a bit-reversed transform, the controlled powers are applied
in bit-reversed association -- counting qubit ``k`` controls ``U^(2^k)`` --
after which the estimate reads out in plain binary.

Run with:  python examples/qpe_phase_estimation.py
"""

import math

import numpy as np

import repro
from repro import CaterpillarTopology
from repro.circuit import GateKind
from repro.verify.statevector import apply_gate


def inverse_qft_events(mapped):
    """Logical gate stream of the inverse QFT from a mapped forward QFT."""

    events = []
    for kind, qubits, angle in reversed(mapped.logical_gate_events()):
        if kind == GateKind.CPHASE:
            events.append((kind, qubits, -angle))
        else:  # H is self-inverse
            events.append((kind, qubits, angle))
    return events


def run_qpe(phase: float, counting_qubits: int = 4):
    """Estimate ``phase`` (a fraction of a full turn) with ``counting_qubits`` bits."""

    # The counting register lives on a small heavy-hex fragment: a main line of
    # three qubits with one dangling qubit (four in total).
    device = CaterpillarTopology(3, [1])
    assert device.num_qubits == counting_qubits
    mapped_qft = repro.compile(
        workload="qft", architecture=device, approach="ours"
    ).mapped

    t = counting_qubits
    n = t + 1  # one extra qubit holds the eigenstate |1> of U = diag(1, e^{2*pi*i*phase})
    target = t

    state = np.zeros(2 ** n, dtype=complex)
    state[0] = 1.0
    # eigenstate |1> on the target qubit (X via H-Z-H)
    state = apply_gate(state, n, GateKind.H, (target,))
    state = apply_gate(state, n, GateKind.RZ, (target,), math.pi)
    state = apply_gate(state, n, GateKind.H, (target,))

    # Hadamard the counting register and apply controlled-U^(2^k); the
    # bit-reversed association matches the mapped (swap-free) QFT convention.
    for k in range(t):
        state = apply_gate(state, n, GateKind.H, (k,))
    for k in range(t):
        angle = 2 * math.pi * phase * (2 ** k)
        state = apply_gate(state, n, GateKind.CPHASE, (k, target), angle)

    # Inverse QFT on the counting register, straight from the mapped kernel.
    for kind, qubits, angle in inverse_qft_events(mapped_qft):
        state = apply_gate(state, n, kind, qubits, angle)

    probs = np.abs(state) ** 2
    counting_probs = np.zeros(2 ** t)
    for idx, p in enumerate(probs):
        bits = format(idx, f"0{n}b")[:t]  # counting qubits 0..t-1, qubit 0 is the MSB
        counting_probs[int(bits, 2)] += p
    best = int(np.argmax(counting_probs))
    return best, counting_probs


def main() -> None:
    t = 4
    for phase in (0.25, 0.375, 0.8125):
        estimate, probs = run_qpe(phase, counting_qubits=t)
        estimated_phase = estimate / 2 ** t
        print(
            f"true phase = {phase:.4f}   estimate = {estimate}/{2**t} = "
            f"{estimated_phase:.4f}   P(best) = {probs[estimate]:.3f}"
        )
        assert abs(estimated_phase - phase) < 1 / 2 ** t, "QPE missed the phase"
    print("QPE with the hardware-mapped QFT kernel recovered every phase.")


if __name__ == "__main__":
    main()
