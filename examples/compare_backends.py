#!/usr/bin/env python
"""Compare the domain-specific mapper against SABRE across backends.

A miniature version of the paper's Table 1 / Figures 17-19, at sizes that run
in well under a minute, driven entirely through `repro.compile()`.  For the
full sweeps use

    python -m repro.eval --experiment all [--profile paper]

and for the registry cross-product on any workload

    python -m repro.eval --workload qaoa

Run with:  python examples/compare_backends.py
"""

import repro
from repro.eval import format_results


def main() -> None:
    cells = [
        ("heavyhex", 2),   # 10 qubits
        ("heavyhex", 4),   # 20 qubits
        ("sycamore", 4),   # 16 qubits
        ("sycamore", 6),   # 36 qubits
        ("lattice", 6),    # 36 qubits (FT backend, weighted depth)
    ]
    results = []
    for kind, size in cells:
        for approach in ("ours", "sabre"):
            result = repro.compile(
                workload="qft", architecture=kind, size=size, approach=approach
            )
            results.append(result.metrics())
    print(format_results(results))

    print("\nSummary (ours vs SABRE):")
    for i in range(0, len(results), 2):
        ours, sabre = results[i], results[i + 1]
        depth_save = 100.0 * (1 - ours.depth / sabre.depth)
        swap_save = 100.0 * (1 - ours.swap_count / sabre.swap_count)
        print(
            f"  {ours.architecture:24s} depth {ours.depth:6d} vs {sabre.depth:6d} "
            f"({depth_save:+5.1f}% vs SABRE)   swaps {ours.swap_count:6d} vs "
            f"{sabre.swap_count:6d} ({swap_save:+5.1f}%)"
        )
    print(
        "\nPositive percentages mean the domain-specific mapper saves that "
        "fraction relative to SABRE; the advantage grows with the qubit count "
        "(Figures 17-19 of the paper)."
    )


if __name__ == "__main__":
    main()
