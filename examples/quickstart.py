#!/usr/bin/env python
"""Quickstart: compile a QFT kernel for three backends and verify it.

Run with:  python examples/quickstart.py
"""

from repro import (
    CaterpillarTopology,
    LatticeSurgeryTopology,
    SycamoreTopology,
    compile_qft,
    verify_mapped_qft,
)


def demo(topology) -> None:
    print(f"\n=== {topology.name}  ({topology.num_qubits} qubits) ===")
    mapped = compile_qft(topology)
    print(f"  mapper          : {mapped.name}")
    print(f"  depth (cycles)  : {mapped.depth()}")
    print(f"  CPHASE gates    : {mapped.cphase_count()}")
    print(f"  SWAP gates      : {mapped.swap_count()}")
    print(f"  depth / qubit   : {mapped.depth() / topology.num_qubits:.2f}")
    result = verify_mapped_qft(mapped)
    print(f"  verification    : {'OK' if result.ok else 'FAILED'}"
          f" (unitary cross-check: "
          f"{'yes' if result.unitary_checked else 'skipped, too large'})")


def main() -> None:
    # IBM heavy-hex, unrolled to a main line with dangling qubits (Section 4).
    demo(CaterpillarTopology.regular_groups(4))          # 20 qubits
    # Google Sycamore patch (Section 5).
    demo(SycamoreTopology(6))                            # 36 qubits
    # Fault-tolerant lattice-surgery grid (Section 6).
    demo(LatticeSurgeryTopology(8))                      # 64 qubits


if __name__ == "__main__":
    main()
