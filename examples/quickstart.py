#!/usr/bin/env python
"""Quickstart: one `repro.compile()` call per backend (and per workload).

Run with:  python examples/quickstart.py
"""

import repro


def demo(workload: str, architecture: str, size: int, approach: str = "ours") -> None:
    result = repro.compile(
        workload=workload, architecture=architecture, size=size, approach=approach
    )
    print(f"\n=== {workload} on {result.architecture}  via {approach} ===")
    if not result.ok:
        print(f"  status          : {result.status} ({result.message})")
        return
    mapped = result.mapped
    print(f"  mapper          : {mapped.name}")
    print(f"  qubits          : {result.num_qubits}")
    print(f"  depth (cycles)  : {mapped.depth()}")
    print(f"  SWAP gates      : {mapped.swap_count()}")
    print(f"  depth / qubit   : {mapped.depth() / result.num_qubits:.2f}")
    print(f"  compile wall    : {result.wall_s * 1000:.1f} ms")
    verification = result.verification
    print(f"  verification    : {'OK' if verification.ok else 'FAILED'}"
          f" (unitary cross-check: "
          f"{'yes' if verification.unitary_checked else 'skipped, too large'})")


def main() -> None:
    # The paper's QFT kernel on its three backends (Sections 4-6).
    demo("qft", "heavyhex", 4)      # IBM heavy-hex, 20 qubits
    demo("qft", "sycamore", 6)      # Google Sycamore patch, 36 qubits
    demo("qft", "lattice", 8)       # FT lattice-surgery grid, 64 qubits

    # The same entry point covers the other registered workloads; the
    # analytic QFT specialists refuse them (typed "unsupported"), so they
    # route through a general approach such as SABRE.
    demo("qaoa", "grid", 4, approach="sabre")
    demo("random", "grid", 4, approach="sabre")
    demo("qaoa", "heavyhex", 2, approach="ours")  # typed unsupported


if __name__ == "__main__":
    main()
