"""Setuptools shim + the optional compiled SABRE kernel.

The project metadata lives in ``pyproject.toml``; this file exists for
legacy ``setup.py`` invocations *and* to declare the optional C extension
behind ``SabreMapper(kernel="c")``::

    python setup.py build_ext --inplace

drops ``repro/baselines/_sabre_kernel.*.so`` next to its wrapper under
``src/``, which is all the runtime selection needs (no install required --
the tier-1 test command runs with ``PYTHONPATH=src``).

The extension is *optional*: pure-Python environments (no C toolchain) keep
working -- ``SabreMapper(kernel="auto")`` falls back to the vectorized
Python path, which is bit-identical.  A failed compile therefore only warns,
unless ``REPRO_REQUIRE_KERNEL=1`` is set (CI's compiled leg sets it, so a
toolchain regression fails loudly there instead of silently testing the
fallback twice).

Environments without the ``wheel`` package (or setuptools >= 70) cannot do
editable installs at all -- there, run with ``PYTHONPATH=src`` instead, which
is how the tier-1 test command works out of the box.

Build flags are environment-tunable so CI legs and local debugging never
require editing this file:

``REPRO_KERNEL_CFLAGS``
    Extra compile flags, shell-quoted (e.g. ``"-O1 -g"``); appended after
    the defaults so they win.
``REPRO_KERNEL_SANITIZE=1``
    The hardened configuration CI's ``asan`` job uses:
    ``-fsanitize=address,undefined`` (compile *and* link),
    ``-fno-sanitize-recover=all`` so a UBSAN hit aborts instead of
    printing-and-continuing, ``-fno-omit-frame-pointer -g`` for readable
    reports, and ``-Wall -Wextra -Werror`` so new warnings in the C
    kernel fail the build.  Running the resulting extension requires the
    ASAN runtime to be loaded first (``LD_PRELOAD=$(gcc
    -print-file-name=libasan.so)``) and CPython's intentional exit leaks
    silenced (``ASAN_OPTIONS=detect_leaks=0``); see scripts/ci.sh.
"""

import os
import shlex

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext

SANITIZE_COMPILE_ARGS = [
    "-fsanitize=address,undefined",
    "-fno-sanitize-recover=all",
    "-fno-omit-frame-pointer",
    "-g",
    "-Wall",
    "-Wextra",
    "-Werror",
]
SANITIZE_LINK_ARGS = ["-fsanitize=address,undefined"]


def _kernel_build_args():
    """(compile_args, link_args) from the REPRO_KERNEL_* environment."""

    compile_args = []
    link_args = []
    if os.environ.get("REPRO_KERNEL_SANITIZE") == "1":
        compile_args += SANITIZE_COMPILE_ARGS
        link_args += SANITIZE_LINK_ARGS
    compile_args += shlex.split(os.environ.get("REPRO_KERNEL_CFLAGS", ""))
    return compile_args, link_args


class optional_build_ext(build_ext):
    """``build_ext`` that degrades to a warning when the toolchain is absent."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # no compiler, missing headers, ...
            self._handle(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._handle(exc)

    @staticmethod
    def _handle(exc):
        if os.environ.get("REPRO_REQUIRE_KERNEL"):
            raise
        print(
            "WARNING: building the compiled SABRE kernel failed "
            f"({exc!r}); continuing without it -- SabreMapper(kernel='auto') "
            "falls back to the bit-identical Python path. "
            "Set REPRO_REQUIRE_KERNEL=1 to make this fatal."
        )


_compile_args, _link_args = _kernel_build_args()

setup(
    ext_modules=[
        Extension(
            "repro.baselines._sabre_kernel",
            sources=["src/repro/baselines/_sabre_kernel.c"],
            extra_compile_args=_compile_args,
            extra_link_args=_link_args,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
