"""Setuptools shim.

The project is fully described by ``pyproject.toml`` (metadata, src-layout
package discovery, pytest configuration); this file only exists so that
legacy tooling which still invokes ``setup.py`` directly keeps working.
Environments without the ``wheel`` package (or setuptools >= 70) cannot do
editable installs at all -- there, run with ``PYTHONPATH=src`` instead, which
is how the tier-1 test command works out of the box.
"""

from setuptools import setup

setup()
